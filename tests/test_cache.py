"""Set-associative cache level: LRU, eviction, invalidation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.memhier.cache import CacheLevel, LineFlags


def tiny_cache(ways=2, sets=2):
    return CacheLevel(CacheConfig("T", sets * ways * 64, ways))


def test_miss_then_hit():
    cache = tiny_cache()
    assert cache.lookup(0) is None
    cache.insert(0)
    assert cache.lookup(0) is not None
    assert cache.hits == 1
    assert cache.misses == 1


def test_lru_victim_selection():
    cache = tiny_cache(ways=2, sets=1)
    cache.insert(0)
    cache.insert(64)
    cache.lookup(0)  # refresh 0: now 64 is LRU
    victim = cache.insert(128)
    assert victim is not None
    assert victim.line_addr == 64


def test_insert_existing_refreshes_without_eviction():
    cache = tiny_cache(ways=2, sets=1)
    cache.insert(0)
    cache.insert(64)
    assert cache.insert(0) is None
    victim = cache.insert(128)
    assert victim.line_addr == 64  # 0 was refreshed by reinsertion


def test_different_sets_do_not_interfere():
    cache = tiny_cache(ways=1, sets=2)
    cache.insert(0)  # set 0
    assert cache.insert(64) is None  # set 1
    assert cache.contains(0)


def test_victim_carries_flags():
    cache = tiny_cache(ways=1, sets=1)
    cache.insert(0, LineFlags(dirty=True, persistent=True, tx_id=9))
    victim = cache.insert(64)
    assert victim.dirty and victim.persistent and victim.tx_id == 9


def test_invalidate():
    cache = tiny_cache()
    cache.insert(0, LineFlags(dirty=True))
    flags = cache.invalidate(0)
    assert flags is not None and flags.dirty
    assert not cache.contains(0)
    assert cache.invalidate(0) is None


def test_contains_has_no_side_effects():
    cache = tiny_cache()
    cache.insert(0)
    hits, misses = cache.hits, cache.misses
    assert cache.contains(0)
    assert not cache.contains(640)
    assert (cache.hits, cache.misses) == (hits, misses)


def test_occupancy_and_iteration():
    cache = tiny_cache()
    cache.insert(0)
    cache.insert(64)
    assert cache.occupancy == 2
    assert sorted(cache.iter_lines()) == [0, 64]


def test_miss_ratio():
    cache = tiny_cache()
    cache.lookup(0)
    cache.insert(0)
    cache.lookup(0)
    assert cache.miss_ratio == pytest.approx(0.5)


def test_clear_and_reset():
    cache = tiny_cache()
    cache.insert(0)
    cache.lookup(0)
    cache.clear()
    assert cache.occupancy == 0
    cache.reset_stats()
    assert cache.hits == 0 and cache.misses == 0


@settings(max_examples=50)
@given(
    st.lists(
        st.integers(min_value=0, max_value=31), min_size=1, max_size=200
    )
)
def test_lru_matches_reference_model(accesses):
    """The cache must match a straightforward per-set LRU list model."""
    ways, sets = 2, 2
    cache = tiny_cache(ways=ways, sets=sets)
    model = {s: [] for s in range(sets)}
    for line_no in accesses:
        line = line_no * 64
        set_index = line_no % sets
        lru = model[set_index]
        if cache.lookup(line) is not None:
            assert line in lru
            lru.remove(line)
            lru.append(line)
        else:
            assert line not in lru
            victim = cache.insert(line)
            if len(lru) == ways:
                expected_victim = lru.pop(0)
                assert victim is not None
                assert victim.line_addr == expected_victim
            else:
                assert victim is None
            lru.append(line)
    for s in range(sets):
        for line in model[s]:
            assert cache.contains(line)
