"""Mapping table and eviction buffer."""

import pytest

from repro.common.addr import CACHE_LINE_BYTES
from repro.core.eviction_buffer import EvictionBuffer
from repro.core.mapping_table import MappingTable, OOPLocation


def loc(seq=1, slice_index=0, slot=0, in_buffer=False, tx_id=1):
    return OOPLocation(
        in_buffer=in_buffer,
        slice_index=slice_index,
        word_slot=slot,
        seq=seq,
        tx_id=tx_id,
    )


class TestMappingTable:
    def test_record_and_lookup(self):
        table = MappingTable(16)
        table.record(0x1000, loc(seq=1))
        assert table.lookup_word(0x1000) == loc(seq=1)
        assert table.entries == 1

    def test_line_grouping(self):
        table = MappingTable(16)
        table.record(0x1000, loc(seq=1))
        table.record(0x1008, loc(seq=2))
        table.record(0x2000, loc(seq=3))
        line = table.lookup_line(0x1000)
        assert set(line) == {0x1000, 0x1008}

    def test_lookup_miss(self):
        table = MappingTable(16)
        assert table.lookup_line(0x9000) is None
        assert table.stats.line_misses == 1

    def test_update_replaces_in_place(self):
        table = MappingTable(16)
        table.record(0x1000, loc(seq=1))
        table.record(0x1000, loc(seq=2))
        assert table.entries == 1
        assert table.lookup_word(0x1000).seq == 2
        assert table.stats.updates == 1

    def test_relocate_buffered_matches_seq(self):
        table = MappingTable(16)
        table.record(0x1000, loc(seq=5, in_buffer=True))
        table.relocate_buffered(0x1000, 5, loc(seq=5, slice_index=77))
        entry = table.lookup_word(0x1000)
        assert not entry.in_buffer and entry.slice_index == 77

    def test_relocate_buffered_skips_superseded(self):
        table = MappingTable(16)
        table.record(0x1000, loc(seq=9, in_buffer=True))
        table.relocate_buffered(0x1000, 5, loc(seq=5, slice_index=77))
        assert table.lookup_word(0x1000).in_buffer  # newer store kept

    def test_remove_if_stale(self):
        table = MappingTable(16)
        table.record(0x1000, loc(seq=3))
        assert table.remove_if_stale(0x1000, migrated_seq=3)
        assert table.entries == 0

    def test_remove_if_stale_keeps_newer(self):
        table = MappingTable(16)
        table.record(0x1000, loc(seq=10))
        assert not table.remove_if_stale(0x1000, migrated_seq=3)
        assert table.entries == 1

    def test_remove_words(self):
        table = MappingTable(16)
        table.record(0x1000, loc())
        table.record(0x1008, loc())
        assert table.remove_words([0x1000, 0x1008, 0x9999]) == 2
        assert table.entries == 0

    def test_overflow_counted_not_fatal(self):
        table = MappingTable(2)
        for i in range(4):
            table.record(i * 8, loc(seq=i))
        assert table.entries == 4
        assert table.stats.overflow_events == 2
        assert table.fill_fraction == 2.0

    def test_peak_entries(self):
        table = MappingTable(16)
        table.record(0x0, loc(seq=1))
        table.record(0x8, loc(seq=2))
        table.remove_words([0x0, 0x8])
        assert table.stats.peak_entries == 2

    def test_crash_clears(self):
        table = MappingTable(16)
        table.record(0x1000, loc())
        table.crash()
        assert table.entries == 0
        assert table.lookup_word(0x1000) is None

    def test_iteration(self):
        table = MappingTable(16)
        table.record(0x1000, loc(seq=1))
        table.record(0x2000, loc(seq=2))
        assert sorted(a for a, _ in table.iter_words()) == [0x1000, 0x2000]
        assert sorted(table.tracked_lines()) == [0x1000, 0x2000]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            MappingTable(0)


class TestEvictionBuffer:
    def test_insert_and_lookup(self):
        buf = EvictionBuffer(4)
        buf.insert(0x1000, b"A" * 64)
        assert buf.lookup(0x1010) == b"A" * 64  # any addr in the line
        assert buf.stats.hits == 1

    def test_miss_counted(self):
        buf = EvictionBuffer(4)
        assert buf.lookup(0x1000) is None
        assert buf.stats.misses == 1

    def test_fifo_eviction(self):
        buf = EvictionBuffer(2)
        buf.insert(0x0, b"0" * 64)
        buf.insert(0x40, b"1" * 64)
        buf.insert(0x80, b"2" * 64)
        assert buf.lookup(0x0) is None
        assert buf.lookup(0x80) is not None
        assert buf.stats.fifo_drops == 1

    def test_reinsert_refreshes(self):
        buf = EvictionBuffer(2)
        buf.insert(0x0, b"0" * 64)
        buf.insert(0x40, b"1" * 64)
        buf.insert(0x0, b"9" * 64)  # refresh
        buf.insert(0x80, b"2" * 64)  # drops 0x40, not 0x0
        assert buf.lookup(0x0) == b"9" * 64
        assert buf.lookup(0x40) is None

    def test_requires_full_lines(self):
        buf = EvictionBuffer(2)
        with pytest.raises(ValueError):
            buf.insert(0x0, b"short")

    def test_crash_clears(self):
        buf = EvictionBuffer(2)
        buf.insert(0x0, b"0" * CACHE_LINE_BYTES)
        buf.crash()
        assert buf.occupancy == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            EvictionBuffer(0)
