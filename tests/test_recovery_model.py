"""Recovery: functional replay details and the Fig. 11 time model."""

import random

import pytest

from repro import MemorySystem, SystemConfig


def populate(transactions=150, seed=7):
    rng = random.Random(seed)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    addrs = [system.allocate(64) for _ in range(16)]
    oracle = {}
    for _ in range(transactions):
        with system.transaction(rng.randrange(4)) as tx:
            for _ in range(rng.randint(1, 5)):
                addr = rng.choice(addrs) + 8 * rng.randrange(8)
                value = rng.getrandbits(64).to_bytes(8, "little")
                tx.store(addr, value)
                oracle[addr] = value
    return system, oracle


class TestFunctional:
    def test_report_counts(self):
        system, oracle = populate()
        system.crash()
        report = system.recover(threads=2)
        assert report.committed_transactions == 150
        assert report.words_recovered == len(oracle)
        assert report.bytes_written == 8 * len(oracle)
        assert report.bytes_scanned > 0
        assert report.slices_walked >= 150

    def test_round_robin_distribution(self):
        system, _ = populate()
        system.crash()
        report = system.recover(threads=4)
        assert len(report.per_thread_txs) == 4
        assert sum(report.per_thread_txs) == 150
        assert max(report.per_thread_txs) - min(report.per_thread_txs) <= 1

    def test_replay_order_by_txid(self):
        system = MemorySystem(SystemConfig.small(), scheme="hoop")
        addr = system.allocate(8)
        for value in (1, 2, 3):
            with system.transaction() as tx:
                tx.store_u64(addr, value)
        system.crash()
        system.recover()
        assert int.from_bytes(system.durable_state(addr, 8), "little") == 3

    def test_region_cleared_after_recovery(self):
        system, _ = populate(transactions=60)
        controller = system.scheme.controller
        system.crash()
        system.recover()
        assert controller.commit_log.live_count == 0
        assert controller.region.free_block_count() == (
            controller.region.num_blocks
        )

    def test_invalid_thread_count(self):
        system, _ = populate(transactions=5)
        system.crash()
        with pytest.raises(ValueError):
            system.recover(threads=0)


class TestTimeModel:
    def _times(self, threads_list, bandwidth):
        system, _ = populate(transactions=200)
        times = []
        for threads in threads_list:
            system.crash()
            report = system.scheme.controller.recovery.recover(
                threads=threads,
                bandwidth_gb_per_s=bandwidth,
                clear_region=False,
            )
            times.append(report.elapsed_ns)
        return times

    def test_more_threads_never_slower(self):
        times = self._times([1, 2, 4, 8, 16], bandwidth=25.0)
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_thread_scaling_saturates_at_low_bandwidth(self):
        low = self._times([1, 16], bandwidth=2.0)
        high = self._times([1, 16], bandwidth=50.0)
        low_speedup = low[0] / low[1]
        high_speedup = high[0] / high[1]
        assert high_speedup > low_speedup

    def test_more_bandwidth_never_slower(self):
        system, _ = populate(transactions=200)
        times = []
        for bandwidth in (5.0, 10.0, 20.0, 40.0):
            system.crash()
            report = system.scheme.controller.recovery.recover(
                threads=8,
                bandwidth_gb_per_s=bandwidth,
                clear_region=False,
            )
            times.append(report.elapsed_ns)
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_elapsed_is_sum_of_phases(self):
        system, _ = populate(transactions=50)
        system.crash()
        report = system.recover(threads=2)
        assert report.elapsed_ns == pytest.approx(
            report.scan_time_ns
            + report.merge_time_ns
            + report.write_time_ns
        )
