"""Workload generators: Table III characteristics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MemorySystem, SystemConfig
from repro.workloads import WorkloadDriver, ZipfianGenerator, make_workload
from repro.workloads.nstore import Table


def run_some(workload_name, transactions=60, **kwargs):
    system = MemorySystem(SystemConfig.small(), scheme="native")
    workload = make_workload(workload_name, system, seed=5, **kwargs)
    workload.setup(core=0)
    system.reset_measurement()
    rng = random.Random(5)
    start_tx = system.committed_transactions
    for _ in range(transactions):
        workload.do_transaction(0, rng)
    executed = system.committed_transactions - start_tx
    stores = system.scheme.stats.tx_stores
    return system, workload, executed, stores


class TestStoreCounts:
    """Per-transaction store counts must match Table III's ranges."""

    def test_vector(self):
        _, _, txs, stores = run_some("vector", capacity=512)
        assert 7 <= stores / txs <= 10  # 8 item words (+ length on insert)

    def test_hashmap(self):
        _, _, txs, stores = run_some(
            "hashmap", keyspace=512, buckets=128
        )
        assert 7 <= stores / txs <= 12

    def test_queue(self):
        _, _, txs, stores = run_some("queue")
        assert 3 <= stores / txs <= 6

    def test_rbtree(self):
        _, _, txs, stores = run_some("rbtree", keyspace=2048)
        assert 2 <= stores / txs <= 11

    def test_btree(self):
        _, _, txs, stores = run_some("btree", keyspace=2048)
        assert 2 <= stores / txs <= 14

    def test_tpcc(self):
        _, _, txs, stores = run_some(
            "tpcc", items=256, customers_per_district=8
        )
        assert 10 <= stores / txs <= 35


class TestYCSB:
    def test_mix_is_80_20(self):
        system, workload, txs, _ = run_some(
            "ycsb", transactions=300, records=256
        )
        total = workload.update_txs + workload.read_txs
        assert total == 300
        assert 0.7 <= workload.update_txs / total <= 0.9

    def test_update_store_range(self):
        system, workload, _, _ = run_some(
            "ycsb", transactions=100, records=256
        )
        stores = system.scheme.stats.tx_stores
        updates = workload.update_txs
        if updates:
            assert 8 <= stores / updates <= 40

    def test_values_readable(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        workload = make_workload("ycsb", system, seed=1, records=64)
        workload.setup(core=0)
        with system.transaction() as tx:
            data = workload.table.read(tx, 0)
        assert len(data) == workload.value_bytes

    def test_bad_params_rejected(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        with pytest.raises(ValueError):
            make_workload(
                "ycsb", system, records=16, update_fraction=1.5
            )


class TestZipfian:
    def test_range(self):
        zipf = ZipfianGenerator(100, rng=random.Random(1))
        draws = [zipf.next() for _ in range(2000)]
        assert all(0 <= d < 100 for d in draws)

    def test_skew(self):
        zipf = ZipfianGenerator(1000, theta=0.99, rng=random.Random(2))
        draws = [zipf.next() for _ in range(5000)]
        top_hits = sum(1 for d in draws if d < 10)
        assert top_hits / len(draws) > 0.3  # heavy head

    def test_scrambled_spreads_hot_keys(self):
        zipf = ZipfianGenerator(1000, rng=random.Random(3))
        draws = {zipf.next_scrambled() for _ in range(500)}
        assert max(draws) > 500  # not clustered at the low ranks

    def test_expected_top_fraction(self):
        zipf = ZipfianGenerator(1000, theta=0.99)
        assert 0 < zipf.expected_top_fraction(10) < 1
        assert zipf.expected_top_fraction(1000) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)


class TestNStore:
    def test_crud(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        table = Table(system, "t", 32)
        with system.transaction() as tx:
            table.insert(tx, 1, b"a" * 32)
            assert table.read(tx, 1) == b"a" * 32
            table.update(tx, 1, b"b" * 32)
            table.update_u64(tx, 1, 8, 777)
            assert table.read_u64(tx, 1, 8) == 777
        assert len(table) == 1
        assert table.contains(1)

    def test_duplicate_insert_rejected(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        table = Table(system, "t", 32)
        with system.transaction() as tx:
            table.insert(tx, 1, b"a" * 32)
            with pytest.raises(Exception):
                table.insert(tx, 1, b"b" * 32)

    def test_missing_key_raises(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        table = Table(system, "t", 32)
        with system.transaction() as tx:
            with pytest.raises(KeyError):
                table.read(tx, 9)

    def test_index_crash_and_rebuild(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        table = Table(system, "t", 32)
        with system.transaction() as tx:
            table.insert(tx, 1, b"a" * 32)
        snapshot = table.snapshot_index()
        table.crash()
        assert not table.contains(1)
        table.rebuild_index(snapshot)
        assert table.contains(1)

    def test_slice_bounds_checked(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        table = Table(system, "t", 32)
        with system.transaction() as tx:
            table.insert(tx, 1, b"a" * 32)
            with pytest.raises(ValueError):
                table.update_slice(tx, 1, 30, b"123456")


class TestDriver:
    def test_min_clock_spreads_threads(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        workload = make_workload("queue", system, seed=2)
        driver = WorkloadDriver(system, threads=4, seed=2)
        result = driver.run(workload, 80, warmup=0)
        assert result.transactions == 80
        active = [c for c in system.clocks[:4] if c > 0]
        assert len(active) == 4  # every thread did work

    def test_result_math(self):
        system = MemorySystem(SystemConfig.small(), scheme="hoop")
        workload = make_workload("queue", system, seed=2)
        driver = WorkloadDriver(system, threads=2, seed=2)
        result = driver.run(workload, 50, warmup=5)
        assert result.throughput_tx_per_ms > 0
        assert result.bytes_per_tx > 0
        assert result.mean_latency_ns > 0
        assert result.scheme == "hoop"
        assert result.workload == "queue"

    def test_thread_bounds_checked(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        with pytest.raises(ValueError):
            WorkloadDriver(system, threads=99)

    def test_unknown_workload_rejected(self):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        with pytest.raises(KeyError):
            make_workload("nope", system)

    def test_determinism(self):
        def one_run():
            system = MemorySystem(SystemConfig.small(), scheme="hoop")
            workload = make_workload("hashmap", system, seed=9,
                                     keyspace=256, buckets=64)
            driver = WorkloadDriver(system, threads=2, seed=9)
            result = driver.run(workload, 60, warmup=0)
            return (
                result.bytes_written,
                result.mean_latency_ns,
                result.makespan_ns,
            )

        assert one_run() == one_run()


class TestZipfianEdges:
    """Skew extremes and degenerate keyspaces stay well-defined."""

    def test_theta_near_zero_is_nearly_uniform(self):
        zipf = ZipfianGenerator(100, theta=1e-4, rng=random.Random(4))
        draws = [zipf.next() for _ in range(8000)]
        assert all(0 <= d < 100 for d in draws)
        top_hits = sum(1 for d in draws if d < 10)
        # ~10% of mass on the top decile when skew vanishes.
        assert 0.05 < top_hits / len(draws) < 0.20
        assert zipf.expected_top_fraction(10) == pytest.approx(
            0.1, abs=0.02
        )

    def test_theta_near_one_is_extremely_skewed(self):
        zipf = ZipfianGenerator(1000, theta=0.9999, rng=random.Random(5))
        draws = [zipf.next() for _ in range(5000)]
        assert all(0 <= d < 1000 for d in draws)
        top_hits = sum(1 for d in draws if d < 10)
        # zeta(10)/zeta(1000) ~ 0.39 at theta -> 1: the head carries
        # vastly more than its 1% uniform share.
        assert top_hits / len(draws) > 0.3
        assert zipf.expected_top_fraction(1) > 0.1
        assert zipf.expected_top_fraction(10) == pytest.approx(
            top_hits / len(draws), abs=0.05
        )

    def test_single_key_keyspace_always_rank_zero(self):
        zipf = ZipfianGenerator(1, theta=0.5, rng=random.Random(6))
        assert all(zipf.next() == 0 for _ in range(200))
        assert all(zipf.next_scrambled() == 0 for _ in range(200))
        assert zipf.expected_top_fraction(1) == pytest.approx(1.0)
        assert zipf.expected_top_fraction(99) == pytest.approx(1.0)

    def test_scrambled_stays_in_range_at_extremes(self):
        for n, theta in ((1, 0.9), (2, 1e-4), (7, 0.9999)):
            zipf = ZipfianGenerator(n, theta=theta, rng=random.Random(7))
            assert all(0 <= zipf.next_scrambled() < n for _ in range(300))


class TestMinClockProperty:
    """The driver always runs the thread whose clock is furthest behind."""

    @settings(max_examples=15, deadline=None)
    @given(
        threads=st.integers(min_value=1, max_value=4),
        transactions=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_driver_selects_min_clock_thread(self, threads, transactions,
                                             seed):
        system = MemorySystem(SystemConfig.small(), scheme="native")
        workload = make_workload("queue", system, seed=seed)
        driver = WorkloadDriver(system, threads=threads, seed=seed)
        selections = []
        original = workload.do_transaction

        def spying(thread, rng):
            clocks = system.clocks[:threads]
            # Invariant: the scheduled thread is (one of) the minimum.
            assert clocks[thread] == min(clocks)
            selections.append(clocks[thread])
            return original(thread, rng)

        workload.do_transaction = spying
        result = driver.run(workload, transactions, warmup=0)
        assert result.transactions == transactions
        assert len(selections) == transactions
        # Min-clock scheduling implies selection times never go backwards.
        assert selections == sorted(selections)
