"""The transactional API and MemorySystem facade."""

import pytest

from repro import MemorySystem, SystemConfig
from repro.common.errors import TransactionError


@pytest.fixture
def system():
    return MemorySystem(SystemConfig.small(), scheme="hoop")


class TestTransactionAPI:
    def test_store_load_round_trip(self, system):
        addr = system.allocate(64)
        with system.transaction() as tx:
            tx.store(addr, b"abcdefgh")
            assert tx.load(addr, 8) == b"abcdefgh"
        assert system.load(addr, 8) == b"abcdefgh"

    def test_u64_helpers(self, system):
        addr = system.allocate(8)
        with system.transaction() as tx:
            tx.store_u64(addr, 123456789)
            assert tx.load_u64(addr) == 123456789

    def test_multi_line_store(self, system):
        addr = system.allocate(256)
        payload = bytes(range(200)) + b"\x00" * 56
        with system.transaction() as tx:
            tx.store(addr, payload)
        assert system.load(addr, 256) == payload

    def test_latency_measured(self, system):
        addr = system.allocate(8)
        with system.transaction() as tx:
            tx.store_u64(addr, 1)
        assert tx.latency_ns > 0
        assert system.latency_count == 1
        assert system.mean_latency_ns == pytest.approx(tx.latency_ns)

    def test_clock_advances_per_core(self, system):
        addr = system.allocate(8)
        with system.transaction(core=1) as tx:
            tx.store_u64(addr, 1)
        assert system.elapsed_ns(1) > 0
        assert system.elapsed_ns(0) == 0

    def test_use_outside_context_rejected(self, system):
        tx = system.transaction()
        with pytest.raises(TransactionError):
            tx.store(0, b"x")
        with pytest.raises(TransactionError):
            tx.load(0, 8)

    def test_use_after_exit_rejected(self, system):
        addr = system.allocate(8)
        with system.transaction() as tx:
            tx.store_u64(addr, 1)
        with pytest.raises(TransactionError):
            tx.store_u64(addr, 2)

    def test_empty_store_rejected(self, system):
        with system.transaction() as tx:
            with pytest.raises(TransactionError):
                tx.store(0, b"")

    def test_exception_propagates(self, system):
        with pytest.raises(RuntimeError):
            with system.transaction() as tx:
                raise RuntimeError("app bug")

    def test_transaction_counter(self, system):
        for _ in range(3):
            with system.transaction() as tx:
                tx.store_u64(system.allocate(8), 1)
        assert system.committed_transactions == 3


class TestSystemFacade:
    def test_allocate_and_free(self, system):
        addr = system.allocate(64)
        system.free(addr, 64)
        assert system.allocate(64) == addr  # size-class reuse

    def test_sync_clocks(self, system):
        with system.transaction(core=2) as tx:
            tx.store_u64(system.allocate(8), 1)
        horizon = system.sync_clocks()
        assert all(c == horizon for c in system.clocks)

    def test_reset_measurement(self, system):
        with system.transaction() as tx:
            tx.store_u64(system.allocate(8), 1)
        system.reset_measurement()
        assert system.latency_count == 0
        assert system.device.stats.bytes_written == 0

    def test_now_ns(self, system):
        assert system.now_ns == 0.0
        with system.transaction(core=3) as tx:
            tx.store_u64(system.allocate(8), 1)
        assert system.now_ns == system.elapsed_ns(3)

    def test_scheme_by_instance(self):
        from repro.schemes.native import NativeScheme

        config = SystemConfig.small()
        from repro.nvm.device import NVMDevice

        device = NVMDevice(config.nvm)
        scheme = NativeScheme(config, device)
        system = MemorySystem(config, scheme=scheme)
        assert system.scheme is scheme

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            MemorySystem(SystemConfig.small(), scheme="nope")

    def test_durable_state_bypasses_caches(self, system):
        addr = system.allocate(8)
        with system.transaction() as tx:
            tx.store_u64(addr, 42)
        # Still cached: durable home copy lags until GC migrates it.
        assert system.durable_state(addr, 8) == bytes(8)
        system.scheme.quiesce(system.now_ns)
        assert int.from_bytes(system.durable_state(addr, 8), "little") == 42


class TestCrashRecoveryFacade:
    def test_crash_then_recover(self, system):
        addr = system.allocate(8)
        with system.transaction() as tx:
            tx.store_u64(addr, 7)
        system.crash()
        report = system.recover(threads=2)
        assert report.committed_transactions == 1
        assert int.from_bytes(system.durable_state(addr, 8), "little") == 7

    def test_reads_work_after_recovery(self, system):
        addr = system.allocate(8)
        with system.transaction() as tx:
            tx.store_u64(addr, 9)
        system.crash()
        system.recover()
        with system.transaction() as tx:
            assert tx.load_u64(addr) == 9
