"""System-level property tests (hypothesis) across schemes.

These complement the unit tests with whole-system invariants:
read-your-writes under arbitrary interleavings, GC transparency, and
allocator/region safety under churn.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MemorySystem, SystemConfig

SCHEMES = ["hoop", "opt-redo", "opt-undo", "osp", "lsm", "lad", "native"]


@settings(max_examples=12, deadline=None)
@given(
    scheme=st.sampled_from(SCHEMES),
    seed=st.integers(min_value=0, max_value=2**16),
    ops=st.integers(min_value=10, max_value=120),
)
def test_read_your_writes(scheme, seed, ops):
    """Every load observes the latest committed (or own-tx) store."""
    rng = random.Random(seed)
    system = MemorySystem(SystemConfig.small(), scheme=scheme)
    addrs = [system.allocate(64) for _ in range(12)]
    model = {}
    for _ in range(ops):
        core = rng.randrange(4)
        with system.transaction(core) as tx:
            for _ in range(rng.randint(1, 5)):
                addr = rng.choice(addrs) + 8 * rng.randrange(8)
                if rng.random() < 0.6:
                    value = rng.getrandbits(64).to_bytes(8, "little")
                    tx.store(addr, value)
                    model[addr] = value
                else:
                    expected = model.get(addr, bytes(8))
                    assert tx.load(addr, 8) == expected, hex(addr)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    gc_every=st.integers(min_value=3, max_value=25),
)
def test_gc_is_transparent_to_readers(seed, gc_every):
    """Forced GC at arbitrary points never changes what readers see."""
    rng = random.Random(seed)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    controller = system.scheme.controller
    addrs = [system.allocate(64) for _ in range(10)]
    model = {}
    for i in range(80):
        with system.transaction(rng.randrange(4)) as tx:
            addr = rng.choice(addrs) + 8 * rng.randrange(8)
            value = rng.getrandbits(64).to_bytes(8, "little")
            tx.store(addr, value)
            model[addr] = value
        if i % gc_every == gc_every - 1:
            controller.gc.run(system.now_ns, on_demand=True)
        probe = rng.choice(list(model))
        assert system.load(probe, 8, core=rng.randrange(4)) == model[probe]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_oop_slices_reconstruct_exact_stream(seed):
    """Recovery rebuilds exactly the final committed value of every word,
    regardless of slice boundaries, duplicate words, and chain shapes."""
    rng = random.Random(seed)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    base = system.allocate(4096)
    oracle = {}
    for _ in range(30):
        with system.transaction() as tx:
            # Between 1 and 25 words: crosses slice boundaries freely.
            for _ in range(rng.randint(1, 25)):
                addr = base + 8 * rng.randrange(512)
                value = rng.getrandbits(64).to_bytes(8, "little")
                tx.store(addr, value)
                oracle[addr] = value
    system.crash()
    system.recover(threads=rng.choice([1, 2, 4]))
    for addr, value in oracle.items():
        assert system.durable_state(addr, 8) == value


def test_region_slices_never_alias_until_reclaimed():
    """Live allocations are unique; reuse only after reclaim."""
    from repro.common.units import MB
    from repro.core.oop_region import OOPRegion
    from repro.memctrl.port import MemoryPort
    from repro.nvm.device import NVMDevice

    config = SystemConfig.small(nvm_capacity=16 * MB)
    region = OOPRegion(config, MemoryPort(NVMDevice(config.nvm)))
    seen = set()
    blocks = []
    for _ in range(region.slots_per_block * 2):
        index = region.allocate_slice(0.0)
        assert index not in seen
        seen.add(index)
        block, _ = region.slice_location(index)
        if block not in blocks:
            blocks.append(block)
    # Reclaim the first (full) block; only ITS indexes may ever recycle.
    region.begin_gc(blocks[0], 0.0)
    region.reclaim(blocks[0], 0.0)
    live = {
        index
        for index in seen
        if region.slice_location(index)[0] != blocks[0]
    }
    for _ in range(region.slots_per_block * (region.num_blocks - 2)):
        index = region.allocate_slice(0.0)
        assert index not in live, "aliased a live slice"


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_quiesce_equals_recovery_content(seed):
    """Draining via GC and draining via crash+recovery agree exactly."""
    def run(drain):
        rng = random.Random(seed)
        system = MemorySystem(SystemConfig.small(), scheme="hoop")
        addrs = [system.allocate(64) for _ in range(8)]
        touched = set()
        for _ in range(60):
            with system.transaction() as tx:
                addr = rng.choice(addrs) + 8 * rng.randrange(8)
                tx.store_u64(addr, rng.getrandbits(63))
                touched.add(addr)
        if drain == "gc":
            system.scheme.quiesce(system.now_ns)
        else:
            system.crash()
            system.recover(threads=2)
        return {addr: system.durable_state(addr, 8) for addr in touched}

    assert run("gc") == run("recovery")
