"""The log-structured OOP region: allocation, states, generations."""

import pytest

from repro.common.config import GCConfig, HoopConfig, NVMConfig, SystemConfig
from repro.common.errors import AddressError, CapacityError
from repro.common.units import KB, MB
from repro.core.oop_region import BlockState, OOPRegion
from repro.memctrl.port import MemoryPort
from repro.nvm.device import NVMDevice


def small_region():
    config = SystemConfig.small(nvm_capacity=16 * MB)
    device = NVMDevice(config.nvm)
    return OOPRegion(config, MemoryPort(device)), config


@pytest.fixture
def region():
    return small_region()[0]


class TestGeometry:
    def test_block_count(self, region):
        assert region.num_blocks >= 2
        assert region.slots_per_block == (64 * KB) // 128 - 1

    def test_slice_addressing_round_trip(self, region):
        index = region.slice_index(1, 5)
        assert region.slice_location(index) == (1, 5)
        addr = region.slice_addr(index)
        assert addr == region.block_base(1) + 6 * 128

    def test_out_of_range_rejected(self, region):
        with pytest.raises(AddressError):
            region.block_base(region.num_blocks)
        with pytest.raises(AddressError):
            region.slice_location(-1)
        with pytest.raises(AddressError):
            region.slice_index(0, region.slots_per_block)


class TestAllocation:
    def test_sequential_within_block(self, region):
        first = region.allocate_slice(0.0)
        second = region.allocate_slice(0.0)
        assert second == first + 1

    def test_block_opens_as_inuse(self, region):
        index = region.allocate_slice(0.0)
        block, _ = region.slice_location(index)
        assert region.state_of(block) == BlockState.INUSE

    def test_block_fills_to_full(self, region):
        for _ in range(region.slots_per_block):
            index = region.allocate_slice(0.0)
        block, _ = region.slice_location(index)
        assert region.state_of(block) == BlockState.FULL
        assert region.full_blocks() == [block]

    def test_streams_use_separate_blocks(self, region):
        data_index = region.allocate_slice(0.0, stream="data")
        addr_index = region.allocate_slice(0.0, stream="addr")
        data_block, _ = region.slice_location(data_index)
        addr_block, _ = region.slice_location(addr_index)
        assert data_block != addr_block
        assert region.stream_of(data_block) == "data"
        assert region.stream_of(addr_block) == "addr"

    def test_unknown_stream_rejected(self, region):
        with pytest.raises(AddressError):
            region.allocate_slice(0.0, stream="bogus")

    def test_exhaustion_raises(self, region):
        capacity = region.num_blocks * region.slots_per_block
        for _ in range(capacity):
            region.allocate_slice(0.0)
        with pytest.raises(CapacityError):
            region.allocate_slice(0.0)

    def test_seal_active_block(self, region):
        index = region.allocate_slice(0.0)
        block, _ = region.slice_location(index)
        assert region.seal_active_block(0.0) == block
        assert region.state_of(block) == BlockState.FULL
        assert region.seal_active_block(0.0) is None


class TestReclamation:
    def _fill_one_block(self, region):
        for _ in range(region.slots_per_block):
            index = region.allocate_slice(0.0)
        block, _ = region.slice_location(index)
        return block

    def test_gc_transition_and_reclaim(self, region):
        block = self._fill_one_block(region)
        free_before = region.free_block_count()
        region.begin_gc(block, 0.0)
        assert region.state_of(block) == BlockState.GC
        region.reclaim(block, 0.0)
        assert region.state_of(block) == BlockState.UNUSED
        assert region.free_block_count() == free_before + 1

    def test_reclaim_requires_gc_state(self, region):
        block = self._fill_one_block(region)
        with pytest.raises(CapacityError):
            region.reclaim(block, 0.0)

    def test_gc_requires_full_state(self, region):
        region.allocate_slice(0.0)
        with pytest.raises(CapacityError):
            region.begin_gc(0, 0.0)

    def test_reclaim_bumps_generation(self, region):
        block = self._fill_one_block(region)
        gen = region.generation_of(block)
        region.begin_gc(block, 0.0)
        region.reclaim(block, 0.0)
        assert region.generation_of(block) == gen + 1

    def test_round_robin_reuse(self, region):
        block = self._fill_one_block(region)
        region.begin_gc(block, 0.0)
        region.reclaim(block, 0.0)
        # The freed block goes to the back of the rotation: the next
        # allocations must come from blocks never used yet (wear leveling).
        index = region.allocate_slice(0.0)
        next_block, _ = region.slice_location(index)
        assert next_block != block


class TestCrashRebuild:
    def test_rebuild_restores_states(self, region):
        for _ in range(region.slots_per_block):
            region.allocate_slice(0.0)
        region.allocate_slice(0.0, stream="addr")
        region.crash()
        region.rebuild_from_nvm()
        assert len(region.full_blocks()) == 1
        addr_blocks = [
            b
            for b in range(region.num_blocks)
            if region.stream_of(b) == "addr"
        ]
        assert len(addr_blocks) == 1

    def test_rebuild_maps_gc_to_full(self, region):
        for _ in range(region.slots_per_block):
            index = region.allocate_slice(0.0)
        block, _ = region.slice_location(index)
        region.begin_gc(block, 0.0)
        region.crash()
        region.rebuild_from_nvm()
        assert region.state_of(block) == BlockState.FULL

    def test_clear_resets_and_bumps_generations(self, region):
        index = region.allocate_slice(0.0)
        block, _ = region.slice_location(index)
        gen = region.generation_of(block)
        region.clear(0.0)
        assert region.state_of(block) == BlockState.UNUSED
        assert region.free_block_count() == region.num_blocks
        assert region.generation_of(block) == gen + 1

    def test_fill_fraction(self, region):
        assert region.fill_fraction == 0.0
        region.allocate_slice(0.0)
        assert region.fill_fraction == pytest.approx(1 / region.num_blocks)


def test_region_requires_two_blocks():
    config = SystemConfig.small(nvm_capacity=16 * MB)
    hoop = HoopConfig(
        oop_block_bytes=2 * MB,
        oop_region_fraction=0.10,
        mapping_table_bytes=64 * KB,
        gc=GCConfig(period_ns=1e6),
    )
    config = config.replace(hoop=hoop, nvm=NVMConfig(capacity=16 * MB))
    device = NVMDevice(config.nvm)
    # 10% of 16 MB is 1.6 MB -> falls back to one 2 MB block -> too few.
    with pytest.raises(CapacityError):
        OOPRegion(config, MemoryPort(device))
