"""Persist-ordering sanitizer: clean schemes, the mutant, zero overhead."""

import pytest

from repro.check.mutant import MUTANT_SCHEME
from repro.check.oracle import REAL_SCHEMES, build_system, run_trace
from repro.check.sanitizer import (
    DISCIPLINES,
    NULL_CHECKER,
    PersistOrderSanitizer,
    rules_for,
)
from repro.check.trace import expected_state, generate_trace


def _sanitized_run(scheme, trace):
    sanitizer = PersistOrderSanitizer()
    system = build_system(scheme, checker=sanitizer)
    outcome = run_trace(system, trace)
    return sanitizer, system, outcome


@pytest.mark.parametrize("scheme", REAL_SCHEMES)
def test_real_schemes_sanitize_clean(scheme):
    trace = generate_trace(3, transactions=25, slots=6, cores=4)
    sanitizer, _, _ = _sanitized_run(scheme, trace)
    assert sanitizer.ok, "\n".join(v.render() for v in sanitizer.violations)
    assert sanitizer.transactions_checked == 25


def test_native_declares_no_discipline():
    trace = generate_trace(3, transactions=10, slots=4, cores=4)
    sanitizer, _, _ = _sanitized_run("native", trace)
    assert sanitizer.discipline == "none"
    assert sanitizer.ok


def test_mutant_caught_with_unfenced_write():
    trace = generate_trace(3, transactions=10, slots=4, cores=4)
    sanitizer, _, _ = _sanitized_run(MUTANT_SCHEME, trace)
    assert not sanitizer.ok
    assert {v.rule for v in sanitizer.violations} == {"unfenced-write"}
    # Violation reports carry the scheme, tx, the offending address and a
    # minimized event window.
    violation = sanitizer.violations[0]
    assert violation.scheme == MUTANT_SCHEME
    assert violation.tx_id > 0
    assert violation.addr >= 0
    assert violation.window, "expected a minimized event window"
    assert len(violation.window) <= 20


def test_violation_window_mentions_commit_and_store():
    trace = generate_trace(3, transactions=4, slots=2, cores=2)
    sanitizer, _, _ = _sanitized_run(MUTANT_SCHEME, trace)
    window = "\n".join(sanitizer.violations[0].window)
    assert "store" in window
    assert "commit" in window


@pytest.mark.parametrize("scheme", REAL_SCHEMES)
def test_checker_attach_is_bit_identical(scheme):
    """--check must not perturb results: same bytes, same clocks."""
    trace = generate_trace(11, transactions=20, slots=6, cores=4)
    plain = build_system(scheme)
    run_trace(plain, trace)
    _, checked, _ = _sanitized_run(scheme, trace)
    assert (
        plain.device.content_fingerprint()
        == checked.device.content_fingerprint()
    )
    assert plain.clocks == checked.clocks
    assert plain.device.stats.writes == checked.device.stats.writes


def test_null_checker_is_inert():
    assert not NULL_CHECKER.active
    # Every hook is a no-op; none may raise.
    NULL_CHECKER.bind_scheme("x", "log-drain")
    NULL_CHECKER.on_tx_begin(1, 0.0)
    NULL_CHECKER.on_store(1, 0x100, 8, 0.0)
    NULL_CHECKER.note_persist(1, "log", 0x100, 64, 0.0, sync=False, port=None)
    NULL_CHECKER.on_drain(None, 0.0, 1)
    NULL_CHECKER.on_tx_committed(1, 0.0)


def test_every_discipline_has_rules():
    for name in DISCIPLINES:
        rules = rules_for(name)
        assert rules is DISCIPLINES[name]
    with pytest.raises(KeyError):
        rules_for("no-such-discipline")


def test_scheme_traits_use_known_disciplines():
    """Docs and enforced contract must agree: every declared durability
    discipline resolves to a rule set."""
    from repro.schemes import ALL_SCHEME_NAMES, scheme_class

    for name in ALL_SCHEME_NAMES:
        assert scheme_class(name).traits.durability in DISCIPLINES, name


def test_readback_matches_model_under_sanitizer():
    trace = generate_trace(5, transactions=20, slots=6, cores=4)
    for scheme in ("hoop", "opt-redo"):
        sanitizer, system, outcome = _sanitized_run(scheme, trace)
        expected = expected_state(trace, outcome.slot_addrs)
        for addr, value in expected.items():
            assert system.load(addr, 8) == value
