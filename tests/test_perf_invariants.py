"""Property tests for the O(1) OOP-region occupancy accounting.

``OOPRegion.fill_fraction`` (and through it ``GarbageCollector.pressure``)
reads an incrementally-maintained busy-block counter instead of
re-scanning every block header.  These tests drive randomized
store/GC/crash sequences and assert, at every step, that the counter
equals a from-scratch recount — with the region's paranoid invariant
mode enabled so every ``fill_fraction`` read re-verifies itself too.
"""

from __future__ import annotations

import random

import pytest

from repro.common.config import SystemConfig
from repro.core import oop_region
from repro.core.oop_region import BlockState
from repro.txn.system import MemorySystem


@pytest.fixture(autouse=True)
def _paranoid_region():
    previous = oop_region.set_invariant_checks(True)
    yield
    oop_region.set_invariant_checks(previous)


def _recount_busy(region) -> int:
    return sum(1 for state in region._state if state != BlockState.UNUSED)


def _store_some(system, rng, addrs) -> None:
    core = rng.randrange(system.config.num_cores)
    with system.transaction(core) as tx:
        for _ in range(rng.randint(1, 4)):
            tx.store_u64(rng.choice(addrs), rng.getrandbits(64))


@pytest.mark.parametrize("seed", [1234, 9001])
def test_incremental_fill_accounting_survives_store_gc_crash(seed):
    rng = random.Random(seed)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    controller = system.scheme.controller
    region = controller.region
    gc = controller.gc
    addrs = [system.allocate(8) for _ in range(64)]

    for step in range(150):
        roll = rng.random()
        if roll < 0.80:
            _store_some(system, rng, addrs)
        elif roll < 0.92:
            gc.run(system.now_ns, on_demand=True)
        else:
            system.crash()
            system.recover()
        # The counter must agree with a full recount after every event.
        region.verify_accounting()
        assert region.busy_blocks == _recount_busy(region)
        # fill_fraction itself re-verifies under the paranoid fixture and
        # must equal the recounted ratio exactly.
        assert region.fill_fraction == _recount_busy(region) / region.num_blocks


def test_telemetry_observation_leaves_state_untouched():
    """A live Telemetry hub must not perturb any simulated outcome.

    Same seed, same config, one run observed and one plain: every piece
    of externally visible state — simulated clock, committed count,
    device traffic, region occupancy — must match exactly.
    """
    from repro.telemetry import Telemetry

    def run(telemetry):
        rng = random.Random(42)
        system = MemorySystem(
            SystemConfig.small(), scheme="hoop", telemetry=telemetry
        )
        addrs = [system.allocate(8) for _ in range(64)]
        for _ in range(120):
            roll = rng.random()
            if roll < 0.85:
                _store_some(system, rng, addrs)
            elif roll < 0.95:
                system.scheme.controller.gc.run(
                    system.now_ns, on_demand=True
                )
            else:
                system.crash()
                system.recover()
        region = system.scheme.controller.region
        region.verify_accounting()
        return (
            system.now_ns,
            tuple(system.clocks),
            system.committed_transactions,
            system.device.stats.bytes_written,
            system.device.stats.bytes_read,
            system.device.energy.total_pj,
            region.busy_blocks,
        )

    telemetry = Telemetry()
    assert run(None) == run(telemetry)
    # ...and the observed run actually recorded something.
    assert telemetry.hist("commit_latency_ns").count > 0


def test_gc_pressure_matches_region_occupancy():
    """pressure() reads the same O(1) counters fill_fraction does."""
    rng = random.Random(77)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    controller = system.scheme.controller
    region = controller.region
    gc = controller.gc
    addrs = [system.allocate(8) for _ in range(32)]
    for _ in range(40):
        _store_some(system, rng, addrs)
    region.verify_accounting()
    # Forcing a pass must keep the accounting consistent afterwards.
    gc.run(system.now_ns, on_demand=True)
    region.verify_accounting()
    assert region.busy_blocks == _recount_busy(region)
