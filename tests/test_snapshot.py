"""Snapshot capture/restore correctness and incremental-replay equivalence.

The snapshot engine's hard gate: a system restored from a snapshot and
run forward must be *bit-identical* to one that never stopped — same
NVM content fingerprint, same device counters, same sanitizer verdicts.
These tests pin that gate for every registry scheme, exercise the
fault-injector countdown (a snapshot captured mid-fault must replay the
same remaining-writes budget, torn-word RNG included), cover the
boundary-exactly-at-a-checkpoint edge (zero residual budget), and check
that the incremental crash sweep, the oracle's crash phase, and the
fuzzer's prefix-replay cache all match their cold-rerun counterparts.
"""

import dataclasses

import pytest

from repro import FaultConfig, crashtest, snapshot
from repro.check import fuzz
from repro.check.oracle import build_system, run_check_matrix
from repro.check.sanitizer import PersistOrderSanitizer
from repro.check.trace import generate_trace
from repro.common.errors import PowerLossError
from repro.faults.injector import FaultyNVMDevice
from repro.schemes import ALL_SCHEME_NAMES
from repro.snapshot import capture, clone_state


def _apply(system, addrs, txns):
    """Replay trace transactions against pre-allocated slot addresses."""
    for txn in txns:
        with system.transaction(txn.core) as tx:
            for store in txn.stores:
                tx.store(
                    addrs[store.slot] + 8 * store.offset,
                    store.value.to_bytes(8, "little"),
                )


def _state(system):
    """Everything the bit-identity gate compares."""
    stats = system.device.stats
    return (
        system.device.content_fingerprint(),
        (stats.reads, stats.writes, stats.bytes_read, stats.bytes_written),
        list(system.check.violations),
    )


class TestCaptureRestoreProperty:
    """capture -> mutate -> restore -> run == cold run, per scheme."""

    @pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
    def test_restore_then_run_matches_cold(self, scheme):
        trace = generate_trace(21, transactions=12, slots=6)
        half = len(trace.txns) // 2

        cold = build_system(scheme, checker=PersistOrderSanitizer())
        cold_addrs = [cold.allocate(64) for _ in range(trace.slots)]
        _apply(cold, cold_addrs, trace.txns)
        want = _state(cold)

        live = build_system(scheme, checker=PersistOrderSanitizer())
        addrs = [live.allocate(64) for _ in range(trace.slots)]
        assert addrs == cold_addrs  # heap allocation is deterministic
        _apply(live, addrs, trace.txns[:half])
        snap = capture(live, txn_index=half)
        assert snap.writes == live.device.stats.writes
        # Mutate the live system well past the capture point; none of
        # it may leak into the snapshot (NVM pages are shared
        # copy-on-write between the live system and the snapshot).
        _apply(live, addrs, trace.txns[half:])
        _apply(live, addrs, trace.txns[:3])

        restored = snap.restore()
        _apply(restored, addrs, trace.txns[half:])
        assert _state(restored) == want

    def test_one_snapshot_seeds_independent_replays(self):
        trace = generate_trace(4, transactions=8, slots=4)
        system = build_system("hoop", checker=PersistOrderSanitizer())
        addrs = [system.allocate(64) for _ in range(trace.slots)]
        _apply(system, addrs, trace.txns[:4])
        snap = capture(system)
        first = snap.restore()
        _apply(first, addrs, trace.txns[4:])
        second = snap.restore()
        _apply(second, addrs, trace.txns[4:])
        assert _state(first) == _state(second)

    def test_every_repro_class_declares_snapshot_state(self):
        snapshot.reset_unregistered()
        trace = generate_trace(5, transactions=4, slots=4)
        for scheme in ALL_SCHEME_NAMES:
            system = build_system(scheme, checker=PersistOrderSanitizer())
            addrs = [system.allocate(64) for _ in range(trace.slots)]
            _apply(system, addrs, trace.txns)
            capture(system)
        assert snapshot.unregistered_classes() == frozenset()


class TestMidFaultCountdown:
    """Snapshots of an armed injector replay the exact same countdown."""

    @staticmethod
    def _device(budget, *, torn=False, seed=3):
        return FaultyNVMDevice(
            faults=FaultConfig(
                enabled=True,
                seed=seed,
                power_loss_after_write=budget,
                torn=torn,
            )
        )

    @staticmethod
    def _write_until_dead(device, start, limit=64):
        for index in range(start, limit):
            try:
                device.write(64 * index, bytes([index % 251 + 1]) * 64)
            except PowerLossError:
                return index
        raise AssertionError("power-loss budget never expired")

    def test_clone_mid_fault_replays_remaining_budget(self):
        # Budget 10: writes 0..9 succeed, write 10 is the fatal one.
        # Cloning after 6 writes must carry the residual budget of 4
        # AND the injector's RNG position, so the torn-word subset of
        # the fatal write matches too (checked via the fingerprint).
        device = self._device(10, torn=True)
        for index in range(6):
            device.write(64 * index, bytes([index + 1]) * 64)
        twin = clone_state(device)
        assert self._write_until_dead(device, 6) == 10
        assert self._write_until_dead(twin, 6) == 10
        assert device.content_fingerprint() == twin.content_fingerprint()
        # Both stay dead until power is restored.
        for dev in (device, twin):
            with pytest.raises(PowerLossError):
                dev.write(0, b"\x07" * 64)

    def test_clone_after_restore_power_stays_disarmed(self):
        device = self._device(3)
        self._write_until_dead(device, 0)
        device.restore_power()
        twin = clone_state(device)
        for index in range(20):
            twin.write(64 * index, b"\x07" * 64)
        assert not twin.injector.power_lost

    def test_rearm_zero_residual_kills_next_write(self):
        # The boundary-exactly-at-a-checkpoint case: the sweep restores
        # the checkpoint and rearms with residual 0 — the very next
        # timed write must be the fatal one.
        device = FaultyNVMDevice(faults=FaultConfig(enabled=True, seed=5))
        for index in range(5):
            device.write(64 * index, b"\x01" * 64)
        twin = clone_state(device)
        twin.rearm(
            dataclasses.replace(
                device.faults, power_loss_after_write=0
            )
        )
        with pytest.raises(PowerLossError):
            twin.write(0, b"\x02" * 64)
        # The live device was never armed and keeps accepting writes.
        device.write(0, b"\x03" * 64)


class TestIncrementalSweepEquivalence:
    """The checkpointed sweep's verdicts are bit-identical to cold."""

    KWARGS = dict(seed=11, transactions=12, addresses=6, sample=0)

    @staticmethod
    def _verdicts(result):
        return (
            result.total_writes,
            [
                (c.boundary, c.torn, c.failure, c.fingerprint, c.committed)
                for c in result.cases
            ],
        )

    def test_exhaustive_sweep_matches_cold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_DISABLE", "1")
        cold = crashtest.sweep_scheme("hoop", **self.KWARGS)
        monkeypatch.delenv("REPRO_SNAPSHOT_DISABLE")
        incremental = crashtest.sweep_scheme(
            "hoop", cadence=2, **self.KWARGS
        )
        assert self._verdicts(incremental) == self._verdicts(cold)
        assert not incremental.failures

    def test_exhaustive_sweep_covers_checkpoint_boundaries(self):
        # The exhaustive sweep above includes every write boundary, so
        # proving some boundary coincides with a checkpoint's write
        # count shows the zero-residual edge was exercised end to end.
        total, _txns, chain = crashtest._probe_and_checkpoint(
            "hoop",
            seed=self.KWARGS["seed"],
            transactions=self.KWARGS["transactions"],
            addresses=self.KWARGS["addresses"],
            cadence=2,
        )
        assert len(chain) > 1
        exact = [
            boundary
            for boundary in range(1, total + 1)
            if (cp := chain.nearest(boundary)) and cp.writes == boundary
        ]
        assert exact, "no boundary landed exactly on a checkpoint"

    def test_oracle_matrix_matches_cold(self, monkeypatch):
        kwargs = dict(seed=7, transactions=10, slots=6, crash_sample=5)
        monkeypatch.setenv("REPRO_SNAPSHOT_DISABLE", "1")
        cold = run_check_matrix(["hoop", "opt-undo"], **kwargs)
        monkeypatch.delenv("REPRO_SNAPSHOT_DISABLE")
        incremental = run_check_matrix(["hoop", "opt-undo"], **kwargs)
        assert incremental.render() == cold.render()
        assert cold.ok and incremental.ok


class TestTraceReplayCache:
    """The fuzzer's prefix cache returns the cold path's verdicts."""

    def test_cached_violations_match_cold(self):
        trace = generate_trace(9, transactions=8, slots=5)
        for scheme in ("hoop", "mutant-redo"):
            cold = fuzz.trace_violations(scheme, trace)
            cache = fuzz.make_replay_cache(scheme, trace.slots)
            cached = fuzz.trace_violations(scheme, trace, cache=cache)
            unrecorded = fuzz.trace_violations(
                scheme, trace, cache=cache, record=False
            )
            assert cached == cold
            assert unrecorded == cold

    def test_prefix_reuse_skips_replayed_transactions(self):
        trace = generate_trace(9, transactions=8, slots=5)
        cache = fuzz.make_replay_cache("hoop", trace.slots)
        cache.replay(trace.txns)
        replayed = cache.replayed_txns
        assert replayed == len(trace.txns)
        # Identical replay: full prefix hit, nothing re-executed.
        cache.replay(trace.txns)
        assert cache.replayed_txns == replayed
        # Dropping txn 4 (a ddmin candidate) shares the 4-txn prefix
        # and only executes the 3 transactions after the cut.
        cache.replay(trace.txns[:4] + trace.txns[5:])
        assert cache.replayed_txns == replayed + 3


class TestEnvKnobs:
    def test_snapshot_disable_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_SNAPSHOT_DISABLE", raising=False)
        assert snapshot.snapshots_enabled()
        for value in ("1", "true"):
            monkeypatch.setenv("REPRO_SNAPSHOT_DISABLE", value)
            assert not snapshot.snapshots_enabled()

    def test_cadence_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_SNAPSHOT_CADENCE", raising=False)
        assert snapshot.checkpoint_cadence(8) == 8
        monkeypatch.setenv("REPRO_SNAPSHOT_CADENCE", "3")
        assert snapshot.checkpoint_cadence(8) == 3
        for bogus in ("0", "-2", "nope"):
            monkeypatch.setenv("REPRO_SNAPSHOT_CADENCE", bogus)
            assert snapshot.checkpoint_cadence(8) == 8


class TestWireRoundTrip:
    """to_wire/from_wire: a mid-traffic replication group travels whole."""

    def _mid_traffic_group(self):
        from repro.serve.replica import ReplicationGroup
        from repro.telemetry.hub import Telemetry

        group = ReplicationGroup(
            0,
            scheme="hoop",
            keys=list(range(16)),
            value_bytes=64,
            seed=21,
            telemetry=Telemetry(),
            replicas=2,
            apply_every=4,
        )
        # 5 shipped entries with apply_every=4 leaves every backup one
        # unapplied tail entry past its last applied batch.
        for i in range(5):
            addr = group.primary.addr_of(i % 16)
            group.commit_and_ship([(addr, bytes([i + 1]) * 64)])
        return group

    def test_mid_traffic_group_round_trips_and_continues(self):
        from repro.serve.replica import keyspace_fingerprint
        from repro.snapshot import to_wire, from_wire
        from repro.telemetry.hub import Telemetry

        group = self._mid_traffic_group()
        backup = group.backups()[0]
        assert backup.tail, "setup must leave an unapplied backup tail"
        # Pending fault arming must survive the wire: a deadline cut on
        # the primary and a nested recovery budget on one backup (both
        # far enough out that the continuation below never trips them —
        # a tripped budget tears the ship mid-batch by design).
        group.primary.system.device.injector.arm_power_loss_at(1e12)
        backup.system.device.injector.arm_recovery_fault(after_ops=500)

        clone = from_wire(to_wire(group), telemetry=Telemetry())

        cb = clone.backups()[0]
        assert cb.shipped_seq == backup.shipped_seq
        assert cb.applied_seq == backup.applied_seq
        assert cb.tail == backup.tail
        assert cb.system.device.injector.pending_nested_fault
        for mine, theirs in zip(group.replicas, clone.replicas):
            assert theirs.fingerprint() == mine.fingerprint()

        # Both copies must continue bit-identically.
        for i in range(3):
            addr = group.primary.addr_of(i)
            stores = [(addr, bytes([0x40 + i]) * 64)]
            ours = group.commit_and_ship(stores)
            theirs = clone.commit_and_ship(
                [(clone.primary.addr_of(i), bytes([0x40 + i]) * 64)]
            )
            assert theirs.ack_ns == ours.ack_ns
        assert {
            i: r.fingerprint() for i, r in enumerate(clone.replicas)
        } == {i: r.fingerprint() for i, r in enumerate(group.replicas)}

    def test_wire_blobs_are_deterministic_and_checked(self):
        from repro.snapshot import WireError, to_wire, from_wire

        group = self._mid_traffic_group()
        assert to_wire(group) == to_wire(group)
        with pytest.raises(WireError):
            from_wire(b"NOPE" + to_wire(group)[4:])

    def test_wire_trips_the_unregistered_tripwire(self):
        from repro.snapshot import (
            reset_unregistered,
            to_wire,
            unregistered_classes,
        )

        reset_unregistered()
        self._mid_traffic_group()  # serve classes all declare state
        to_wire(self._mid_traffic_group())
        assert unregistered_classes() == frozenset()
