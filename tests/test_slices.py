"""Memory-slice codecs: bit-exact round trips and corruption detection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import CorruptionError
from repro.core.slices import (
    KIND_ADDR,
    KIND_DATA,
    KIND_FREE,
    SLICE_BYTES,
    STATE_LAST,
    STATE_OPEN,
    AddressSlice,
    AddressSliceEntry,
    DataSlice,
    SliceCodec,
)


@pytest.fixture
def codec():
    return SliceCodec(home_addr_bits=40)


def words_strategy(max_words=8):
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**36).map(lambda w: w * 8),
            st.binary(min_size=8, max_size=8),
        ),
        min_size=1,
        max_size=max_words,
        unique_by=lambda t: t[0],
    )


class TestDataSlices:
    def test_round_trip(self, codec):
        ds = DataSlice(
            tx_id=7,
            words=((0x1000, b"ABCDEFGH"), (0x2008, b"12345678")),
            is_start=True,
            prev_delta=None,
            state=STATE_LAST,
            generation=3,
        )
        raw = codec.encode_data(ds)
        assert len(raw) == SLICE_BYTES
        back = codec.decode_data(raw)
        assert back == ds

    def test_prev_delta_round_trip(self, codec):
        ds = DataSlice(tx_id=1, words=((8, b"x" * 8),), prev_delta=12345)
        assert codec.decode_data(codec.encode_data(ds)).prev_delta == 12345

    def test_kind_tag(self, codec):
        raw = codec.encode_data(
            DataSlice(tx_id=1, words=((8, b"x" * 8),))
        )
        assert SliceCodec.kind_of(raw) == KIND_DATA

    def test_full_packing_eight_words(self, codec):
        words = tuple((i * 8, bytes([i]) * 8) for i in range(8))
        ds = DataSlice(tx_id=2, words=words)
        assert codec.decode_data(codec.encode_data(ds)).words == words

    def test_too_many_words_rejected(self, codec):
        words = tuple((i * 8, b"x" * 8) for i in range(9))
        with pytest.raises(ValueError):
            DataSlice(tx_id=1, words=words) and codec.encode_data(
                DataSlice(tx_id=1, words=words)
            )

    def test_unaligned_address_rejected(self):
        with pytest.raises(ValueError):
            DataSlice(tx_id=1, words=((3, b"x" * 8),))

    def test_wrong_word_size_rejected(self):
        with pytest.raises(ValueError):
            DataSlice(tx_id=1, words=((8, b"short"),))

    def test_address_beyond_width_rejected(self, codec):
        ds = DataSlice(tx_id=1, words=((2**40 * 8, b"x" * 8),))
        with pytest.raises(ValueError):
            codec.encode_data(ds)

    def test_corruption_detected(self, codec):
        raw = bytearray(
            codec.encode_data(DataSlice(tx_id=1, words=((8, b"x" * 8),)))
        )
        raw[70] ^= 0xFF  # flip bits in the metadata area
        with pytest.raises(CorruptionError):
            codec.decode_data(bytes(raw))

    def test_wrong_kind_rejected(self, codec):
        raw = codec.encode_addr(AddressSlice())
        with pytest.raises(CorruptionError):
            codec.decode_data(raw)

    def test_free_slice_classified(self):
        assert SliceCodec.kind_of(bytes(SLICE_BYTES)) == KIND_FREE

    def test_wrong_length_rejected(self, codec):
        with pytest.raises(CorruptionError):
            codec.decode_data(b"\x00" * 10)

    @given(
        words_strategy(),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.booleans(),
        st.one_of(st.none(), st.integers(min_value=0, max_value=2**24 - 2)),
        st.integers(min_value=0, max_value=255),
    )
    def test_round_trip_property(self, words, tx_id, start, delta, gen):
        codec = SliceCodec(home_addr_bits=40)
        ds = DataSlice(
            tx_id=tx_id,
            words=tuple(words),
            is_start=start,
            prev_delta=delta,
            state=STATE_OPEN,
            generation=gen,
        )
        assert codec.decode_data(codec.encode_data(ds)) == ds


class TestAddressSlices:
    def test_round_trip(self, codec):
        page = AddressSlice(
            entries=[
                AddressSliceEntry(tx_id=1, tail_slice=100, committed=True),
                AddressSliceEntry(
                    tx_id=2, tail_slice=200, committed=False, retired=True
                ),
            ],
            sequence=5,
        )
        back = codec.decode_addr(codec.encode_addr(page))
        assert back.entries == page.entries
        assert back.sequence == 5

    def test_kind_tag(self, codec):
        assert SliceCodec.kind_of(codec.encode_addr(AddressSlice())) == (
            KIND_ADDR
        )

    def test_capacity(self, codec):
        assert codec.entries_per_addr_slice >= 13
        entries = [
            AddressSliceEntry(tx_id=i, tail_slice=i)
            for i in range(codec.entries_per_addr_slice)
        ]
        page = AddressSlice(entries=entries)
        assert codec.decode_addr(codec.encode_addr(page)).entries == entries

    def test_overflow_rejected(self, codec):
        entries = [
            AddressSliceEntry(tx_id=i, tail_slice=i)
            for i in range(codec.entries_per_addr_slice + 1)
        ]
        with pytest.raises(ValueError):
            codec.encode_addr(AddressSlice(entries=entries))

    def test_corruption_detected(self, codec):
        raw = bytearray(
            codec.encode_addr(
                AddressSlice(
                    entries=[AddressSliceEntry(tx_id=1, tail_slice=1)]
                )
            )
        )
        raw[10] ^= 0x55
        with pytest.raises(CorruptionError):
            codec.decode_addr(bytes(raw))

    def test_huge_tail_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode_addr(
                AddressSlice(
                    entries=[AddressSliceEntry(tx_id=1, tail_slice=2**34)]
                )
            )


class TestVariablePacking:
    def test_40_bit_packs_eight(self):
        assert SliceCodec.for_home_bits(40).words_per_slice == 8

    def test_64_bit_packs_seven(self):
        # The paper's large-capacity case: wider addresses shrink N while
        # the slice still fits two cache lines.
        codec = SliceCodec.for_home_bits(64)
        assert codec.words_per_slice == 7

    def test_packing_monotonically_shrinks(self):
        previous = 9
        for bits in (32, 40, 48, 56, 64):
            n = SliceCodec.for_home_bits(bits).words_per_slice
            assert n <= previous
            previous = n

    def test_small_codec_round_trip(self):
        codec = SliceCodec.for_home_bits(64)
        words = tuple(
            (i * 8, bytes([i]) * 8) for i in range(codec.words_per_slice)
        )
        ds = DataSlice(tx_id=1, words=words)
        assert codec.decode_data(codec.encode_data(ds)).words == words

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            SliceCodec(home_addr_bits=7)
        with pytest.raises(ValueError):
            SliceCodec(home_addr_bits=40, words_per_slice=0)
