"""Persistent heap allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import AllocationError
from repro.txn.allocator import PersistentHeap


def test_basic_allocation_alignment():
    heap = PersistentHeap(base=4096, limit=1 << 20)
    addr = heap.allocate(10)
    assert addr % 8 == 0
    other = heap.allocate(10)
    assert other >= addr + 16  # rounded to word multiple


def test_free_list_reuse():
    heap = PersistentHeap(base=4096, limit=1 << 20)
    a = heap.allocate(64)
    heap.free(a, 64)
    assert heap.allocate(64) == a


def test_size_classes_do_not_mix():
    heap = PersistentHeap(base=4096, limit=1 << 20)
    a = heap.allocate(64)
    heap.free(a, 64)
    b = heap.allocate(128)
    assert b != a


def test_exhaustion():
    heap = PersistentHeap(base=0, limit=128)
    heap.allocate(64)
    heap.allocate(64)
    with pytest.raises(AllocationError):
        heap.allocate(8)


def test_invalid_sizes_rejected():
    heap = PersistentHeap()
    with pytest.raises(AllocationError):
        heap.allocate(0)
    with pytest.raises(AllocationError):
        heap.allocate(-8)


def test_foreign_free_rejected():
    heap = PersistentHeap(base=4096, limit=8192)
    with pytest.raises(AllocationError):
        heap.free(100, 8)


def test_bad_range_rejected():
    with pytest.raises(AllocationError):
        PersistentHeap(base=100, limit=100)
    with pytest.raises(AllocationError):
        PersistentHeap(alignment=3)


def test_counters():
    heap = PersistentHeap(base=4096, limit=1 << 20)
    a = heap.allocate(32)
    heap.allocate(32)
    heap.free(a, 32)
    assert heap.allocations == 2
    assert heap.frees == 1
    assert heap.live_allocations == 1
    assert heap.bytes_reserved == 64


@given(
    st.lists(
        st.integers(min_value=1, max_value=512), min_size=1, max_size=100
    )
)
def test_allocations_never_overlap(sizes):
    heap = PersistentHeap(base=4096, limit=1 << 22)
    spans = []
    for size in sizes:
        addr = heap.allocate(size)
        for start, end in spans:
            assert addr + size <= start or addr >= end, "overlap"
        spans.append((addr, addr + size))
        assert addr % 8 == 0
