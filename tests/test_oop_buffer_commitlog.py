"""OOP data buffer (packing) and commit log (lazy pages, retire)."""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import TransactionError
from repro.common.units import MB
from repro.core.commit_log import CommitLog
from repro.core.mapping_table import MappingTable
from repro.core.oop_buffer import OOPDataBuffer
from repro.core.oop_region import OOPRegion
from repro.core.slices import STATE_LAST, SliceCodec
from repro.memctrl.port import MemoryPort
from repro.nvm.device import NVMDevice


@pytest.fixture
def rig():
    config = SystemConfig.small(nvm_capacity=16 * MB)
    device = NVMDevice(config.nvm)
    port = MemoryPort(device)
    region = OOPRegion(config, port)
    codec = SliceCodec(config.hoop.home_addr_bits)
    mapping = MappingTable(config.hoop.mapping_table_entries)
    buffer = OOPDataBuffer(config, region, codec, mapping)
    log = CommitLog(region, codec)
    return config, region, codec, mapping, buffer, log


def word(i):
    return i.to_bytes(8, "little")


class TestOOPDataBuffer:
    def test_words_stay_buffered_until_overflow(self, rig):
        _, region, codec, mapping, buffer, _ = rig
        buffer.begin(0, tx_id=1)
        for i in range(codec.words_per_slice):
            buffer.add_word(0, i * 8, word(i), seq=i + 1, now_ns=0.0)
        assert buffer.stats.slices_written == 0
        assert buffer.pending_count(0) == codec.words_per_slice

    def test_overflow_packs_one_slice(self, rig):
        _, region, codec, _, buffer, _ = rig
        buffer.begin(0, tx_id=1)
        for i in range(codec.words_per_slice + 1):
            buffer.add_word(0, i * 8, word(i), seq=i + 1, now_ns=0.0)
        assert buffer.stats.slices_written == 1
        assert buffer.pending_count(0) == 1

    def test_same_word_dedupes(self, rig):
        _, _, _, mapping, buffer, _ = rig
        buffer.begin(0, tx_id=1)
        buffer.add_word(0, 0, word(1), seq=1, now_ns=0.0)
        buffer.add_word(0, 0, word(2), seq=2, now_ns=0.0)
        assert buffer.pending_count(0) == 1
        assert buffer.stats.words_deduped == 1
        assert buffer.buffered_word(0, 0) == word(2)
        assert mapping.lookup_word(0).seq == 2

    def test_mapping_points_into_buffer_then_slice(self, rig):
        _, region, codec, mapping, buffer, _ = rig
        buffer.begin(0, tx_id=1)
        buffer.add_word(0, 0, word(7), seq=1, now_ns=0.0)
        assert mapping.lookup_word(0).in_buffer
        tails, _ = buffer.tx_end(0, 0.0)
        entry = mapping.lookup_word(0)
        assert not entry.in_buffer
        assert entry.slice_index == tails[-1]

    def test_tx_end_writes_last_slice(self, rig):
        _, region, codec, _, buffer, _ = rig
        buffer.begin(0, tx_id=5)
        for i in range(3):
            buffer.add_word(0, i * 8, word(i), seq=i + 1, now_ns=0.0)
        tails, completion = buffer.tx_end(0, 10.0)
        assert len(tails) == 1
        assert completion > 10.0
        raw, _ = region.read_slice(tails[0], 0.0)
        ds = codec.decode_data(raw)
        assert ds.state == STATE_LAST
        assert ds.tx_id == 5
        assert len(ds.words) == 3

    def test_chain_links_backwards(self, rig):
        _, region, codec, _, buffer, _ = rig
        buffer.begin(0, tx_id=2)
        for i in range(codec.words_per_slice + 2):
            buffer.add_word(0, i * 8, word(i), seq=i + 1, now_ns=0.0)
        tails, _ = buffer.tx_end(0, 0.0)
        raw, _ = region.read_slice(tails[-1], 0.0)
        last = codec.decode_data(raw)
        assert last.prev_delta is not None
        prev_index = tails[-1] - last.prev_delta
        raw, _ = region.read_slice(prev_index, 0.0)
        first = codec.decode_data(raw)
        assert first.is_start and first.prev_delta is None

    def test_empty_tx_returns_no_segments(self, rig):
        _, _, _, _, buffer, _ = rig
        buffer.begin(0, tx_id=3)
        tails, completion = buffer.tx_end(0, 4.0)
        assert tails == []
        assert completion == 4.0

    def test_double_begin_rejected(self, rig):
        _, _, _, _, buffer, _ = rig
        buffer.begin(0, tx_id=1)
        with pytest.raises(TransactionError):
            buffer.begin(0, tx_id=2)

    def test_store_without_tx_rejected(self, rig):
        _, _, _, _, buffer, _ = rig
        with pytest.raises(TransactionError):
            buffer.add_word(0, 0, word(0), seq=1, now_ns=0.0)

    def test_per_core_isolation(self, rig):
        _, _, _, _, buffer, _ = rig
        buffer.begin(0, tx_id=1)
        buffer.begin(1, tx_id=2)
        buffer.add_word(0, 0, word(1), seq=1, now_ns=0.0)
        buffer.add_word(1, 8, word(2), seq=2, now_ns=0.0)
        assert buffer.buffered_word(0, 0) == word(1)
        assert buffer.buffered_word(1, 0) is None
        assert buffer.open_tx(0) == 1
        assert buffer.open_tx(1) == 2

    def test_crash_drops_pending(self, rig):
        _, _, _, _, buffer, _ = rig
        buffer.begin(0, tx_id=1)
        buffer.add_word(0, 0, word(1), seq=1, now_ns=0.0)
        buffer.crash()
        assert buffer.open_tx(0) is None
        assert buffer.buffered_word(0, 0) is None


class TestCommitLog:
    def test_committed_entry_is_lazy(self, rig):
        _, region, _, _, _, log = rig
        writes_before = region.port.stats.sync_writes
        log.append_entry(1, 10, committed=True, now_ns=0.0)
        assert region.port.stats.sync_writes == writes_before
        assert log.commits == 1

    def test_segment_entry_is_eager(self, rig):
        _, region, _, _, _, log = rig
        writes_before = region.port.stats.sync_writes
        log.append_entry(1, 10, committed=False, now_ns=0.0)
        assert region.port.stats.sync_writes == writes_before + 1

    def test_page_flush_when_full(self, rig):
        _, region, codec, _, _, log = rig
        async_before = region.port.stats.async_writes
        for i in range(codec.entries_per_addr_slice):
            log.append_entry(i + 1, i, committed=True, now_ns=0.0)
        assert region.port.stats.async_writes > async_before

    def test_committed_transactions_grouping(self, rig):
        _, _, _, _, _, log = rig
        log.append_entry(1, 10, committed=False, now_ns=0.0)
        log.append_entry(1, 20, committed=True, now_ns=0.0)
        log.append_entry(2, 30, committed=True, now_ns=0.0)
        txs = {tx.tx_id: tx for tx in log.committed_transactions()}
        assert txs[1].segment_tails == (10, 20)
        assert txs[2].segment_tails == (30,)

    def test_retire_excludes_from_committed(self, rig):
        _, _, _, _, _, log = rig
        log.append_entry(1, 10, committed=True, now_ns=0.0)
        log.append_entry(2, 20, committed=True, now_ns=0.0)
        log.retire([1], now_ns=0.0)
        remaining = [tx.tx_id for tx in log.committed_transactions()]
        assert remaining == [2]
        assert log.retired == 1

    def test_retire_is_durable(self, rig):
        _, region, codec, _, _, log = rig
        sync_before = region.port.stats.sync_writes
        log.append_entry(1, 10, committed=True, now_ns=0.0)
        log.retire([1], now_ns=0.0)
        assert region.port.stats.sync_writes > sync_before

    def test_fully_retired_pages(self, rig):
        _, _, codec, _, _, log = rig
        per_page = codec.entries_per_addr_slice
        for i in range(per_page + 1):  # spills into a second page
            log.append_entry(i + 1, i, committed=True, now_ns=0.0)
        log.retire(range(1, per_page + 1), now_ns=0.0)
        pages = log.fully_retired_pages()
        assert len(pages) == 1
        log.drop_pages(pages)
        assert log.fully_retired_pages() == []

    def test_known_and_open_segments(self, rig):
        _, _, _, _, _, log = rig
        log.append_entry(5, 100, committed=False, now_ns=0.0)
        assert 5 in log.known_tx_ids()
        assert log.open_segments() == {5: [100]}

    def test_crash_and_rebuild_via_flush(self, rig):
        _, region, codec, _, _, log = rig
        log.append_entry(1, 10, committed=True, now_ns=0.0)
        log.flush_dirty(0.0)
        pages = [(p.slice_index, p.content) for p in log._pages]
        log.crash()
        assert log.committed_transactions() == []
        log.rebuild(pages)
        assert [tx.tx_id for tx in log.committed_transactions()] == [1]

    def test_live_count(self, rig):
        _, _, _, _, _, log = rig
        log.append_entry(1, 10, committed=True, now_ns=0.0)
        log.append_entry(2, 20, committed=True, now_ns=0.0)
        assert log.live_count == 2
        log.retire([1], now_ns=0.0)
        assert log.live_count == 1
