"""THE property: atomic durability under crashes, for every scheme.

A random transactional workload runs against each persistence scheme; the
machine power-fails at a random transaction boundary (and, separately,
*inside* a transaction); recovery must restore exactly the committed
prefix — every committed write visible, no uncommitted write visible.

Native is the control group: with eviction pressure it must *fail* this
property, which validates that the test can actually detect torn state.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MemorySystem, SystemConfig

PERSISTENT_SCHEMES = [
    "hoop", "opt-redo", "opt-undo", "osp", "lsm", "lad", "logregion",
]


def run_random_workload(
    scheme,
    *,
    seed,
    transactions,
    crash_mid_tx=False,
    gc_every=0,
    addresses=24,
):
    """Returns (system, oracle of committed writes, uncommitted writes)."""
    rng = random.Random(seed)
    system = MemorySystem(SystemConfig.small(), scheme=scheme)
    addrs = [system.allocate(64) for _ in range(addresses)]
    oracle = {}
    for i in range(transactions):
        core = rng.randrange(system.config.num_cores)
        staged = {}
        with system.transaction(core) as tx:
            for _ in range(rng.randint(1, 6)):
                addr = rng.choice(addrs) + 8 * rng.randrange(8)
                value = rng.getrandbits(64).to_bytes(8, "little")
                tx.store(addr, value)
                staged[addr] = value
        oracle.update(staged)
        if gc_every and i % gc_every == gc_every - 1:
            system.scheme.tick(system.now_ns)
    uncommitted = {}
    if crash_mid_tx:
        doomed = system.transaction(0)
        doomed.__enter__()
        for _ in range(rng.randint(1, 6)):
            addr = rng.choice(addrs) + 8 * rng.randrange(8)
            value = rng.getrandbits(64).to_bytes(8, "little")
            doomed.store(addr, value)
            uncommitted[addr] = value
    return system, oracle, uncommitted


def verify_oracle(system, oracle):
    bad = [
        hex(addr)
        for addr, value in oracle.items()
        if system.durable_state(addr, 8) != value
    ]
    assert not bad, f"{len(bad)} committed words lost/stale: {bad[:5]}"


@pytest.mark.parametrize("scheme", PERSISTENT_SCHEMES)
def test_crash_at_boundary_preserves_all_commits(scheme):
    system, oracle, _ = run_random_workload(
        scheme, seed=101, transactions=250
    )
    system.crash()
    system.recover(threads=2)
    verify_oracle(system, oracle)


@pytest.mark.parametrize("scheme", PERSISTENT_SCHEMES)
def test_crash_mid_transaction_discards_it(scheme):
    system, oracle, uncommitted = run_random_workload(
        scheme, seed=202, transactions=120, crash_mid_tx=True
    )
    system.crash()
    system.recover(threads=2)
    verify_oracle(system, oracle)
    # No uncommitted write may be visible unless an *earlier committed*
    # transaction stored the same value there.
    for addr, value in uncommitted.items():
        durable = system.durable_state(addr, 8)
        if durable == value:
            assert oracle.get(addr) == value, (
                f"uncommitted write leaked at {addr:#x}"
            )


@pytest.mark.parametrize("scheme", ["hoop", "lsm", "opt-redo"])
def test_crash_after_background_activity(scheme):
    """GC/checkpoint cadence between transactions must stay crash-safe."""
    system, oracle, _ = run_random_workload(
        scheme, seed=303, transactions=400, gc_every=40
    )
    system.crash()
    system.recover(threads=4)
    verify_oracle(system, oracle)


def test_hoop_double_crash_recovery_idempotent():
    system, oracle, _ = run_random_workload(
        "hoop", seed=404, transactions=150
    )
    system.crash()
    system.recover(threads=1)
    # Crash again immediately: recovery cleared the OOP region, so the
    # second pass replays nothing but must leave the data intact.
    system.crash()
    system.recover(threads=2)
    verify_oracle(system, oracle)


def test_recovery_thread_count_does_not_change_content():
    images = []
    for threads in (1, 3, 8):
        system, oracle, _ = run_random_workload(
            "hoop", seed=505, transactions=200
        )
        system.crash()
        system.recover(threads=threads)
        images.append(
            {addr: system.durable_state(addr, 8) for addr in oracle}
        )
        verify_oracle(system, oracle)
    assert images[0] == images[1] == images[2]


def test_native_is_not_crash_consistent():
    """The control: without persistence support, commits can be lost."""
    system, oracle, _ = run_random_workload(
        "native", seed=606, transactions=250
    )
    system.crash()
    system.recover()
    lost = sum(
        1
        for addr, value in oracle.items()
        if system.durable_state(addr, 8) != value
    )
    assert lost > 0, "native unexpectedly survived the crash"


@settings(max_examples=10, deadline=None)
@given(
    scheme=st.sampled_from(PERSISTENT_SCHEMES),
    seed=st.integers(min_value=0, max_value=2**20),
    transactions=st.integers(min_value=5, max_value=120),
)
def test_crash_consistency_fuzz(scheme, seed, transactions):
    system, oracle, _ = run_random_workload(
        scheme, seed=seed, transactions=transactions
    )
    system.crash()
    system.recover(threads=2)
    verify_oracle(system, oracle)
