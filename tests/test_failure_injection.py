"""Failure injection: crashes inside GC, torn writes, partial persists.

§III-E claims GC is crash-safe ("HOOP can simply replay all committed
transactions in the OOP region") and §III-F claims the same for recovery
itself.  These tests interrupt both at arbitrary NVM-write boundaries and
verify the claims hold.

Power loss is injected through the first-class fault layer
(:mod:`repro.faults`) — the system is built with ``FaultConfig`` enabled
and the budget armed on the device's injector — rather than by
monkeypatching device methods, so the tests exercise the same code path
as ``python -m repro.crashtest``.
"""

import random

import pytest

from repro import FaultConfig, MemorySystem, SystemConfig
from repro.common.errors import PowerLossError
from repro.core.slices import SLICE_BYTES


def build_system(seed=11, transactions=120, faults=None):
    rng = random.Random(seed)
    config = SystemConfig.small()
    if faults is not None:
        config = config.replace(faults=faults)
    system = MemorySystem(config, scheme="hoop")
    addrs = [system.allocate(64) for _ in range(16)]
    oracle = {}
    for _ in range(transactions):
        with system.transaction(rng.randrange(4)) as tx:
            for _ in range(rng.randint(1, 5)):
                addr = rng.choice(addrs) + 8 * rng.randrange(8)
                value = rng.getrandbits(64).to_bytes(8, "little")
                tx.store(addr, value)
                oracle[addr] = value
    return system, oracle


def build_faulty_system(seed=11, transactions=120):
    """A system on the fault device with no fault armed yet."""
    return build_system(
        seed, transactions, faults=FaultConfig(enabled=True, seed=seed)
    )


def verify(system, oracle):
    for addr, value in oracle.items():
        assert system.durable_state(addr, 8) == value, hex(addr)


@pytest.mark.parametrize("fail_after", [1, 3, 7, 15, 40])
def test_crash_during_gc_is_safe(fail_after):
    """Power fails after N device writes inside a GC pass."""
    system, oracle = build_faulty_system(seed=fail_after)
    system.device.injector.arm_power_loss(after_writes=fail_after)
    try:
        system.scheme.controller.gc.run(system.now_ns, on_demand=True)
    except PowerLossError:
        pass
    system.crash()
    system.recover(threads=2)
    verify(system, oracle)
    assert system.device.fault_stats.power_cuts <= 1


@pytest.mark.parametrize("fail_after", [2, 10, 33])
def test_crash_during_recovery_is_restartable(fail_after):
    """§III-F: recovery interrupted by another crash simply restarts."""
    system, oracle = build_faulty_system(seed=fail_after * 7)
    system.crash()
    # Recovery restores the home region through the functional plane, so
    # a crash *during recovery* is armed as a poke budget.
    system.device.injector.arm_power_loss(after_pokes=fail_after)
    try:
        system.recover(threads=2)
        interrupted = False
    except PowerLossError:
        interrupted = True
    system.crash()
    system.recover(threads=2)
    verify(system, oracle)
    assert interrupted == (system.device.fault_stats.power_cuts == 1)


def test_torn_final_slice_drops_only_that_transaction():
    """Corrupting the newest slice (a torn write) must not affect older
    committed transactions."""
    system, oracle = build_system(seed=3, transactions=60)
    controller = system.scheme.controller
    region = controller.region
    # The most recently written data slice is the active block's last
    # allocated slot; tear it.
    active = region.active_block("data")
    assert active is not None
    cursor = region._cursor["data"] - 1
    victim = region.slice_index(active, cursor)
    addr = region.slice_addr(victim)
    raw = bytearray(system.device.peek(addr, SLICE_BYTES))
    raw[40] ^= 0xFF
    system.device.poke(addr, bytes(raw))
    # The torn slice belonged to the newest transaction; recovery must
    # keep everything the tear did not touch.
    from repro.core.slices import SliceCodec
    from repro.common.errors import CorruptionError

    torn_tx = None
    try:
        controller.codec.decode_data(bytes(raw))
    except CorruptionError:
        pass  # expected: it no longer parses
    system.crash()
    system.recover(threads=1)
    # At most the words of the single torn transaction may be stale.
    stale = [
        addr
        for addr, value in oracle.items()
        if system.durable_state(addr, 8) != value
    ]
    assert len(stale) <= 6  # one transaction's worth


def test_torn_commit_log_page_loses_at_most_newest_entries():
    system, oracle = build_system(seed=5, transactions=40)
    controller = system.scheme.controller
    # Flush pages, then corrupt the newest page on NVM.
    controller.commit_log.flush_dirty(0.0)
    pages = controller.commit_log._pages
    victim = pages[-1]
    addr = controller.region.slice_addr(victim.slice_index)
    raw = bytearray(system.device.peek(addr, SLICE_BYTES))
    raw[8] ^= 0xA5
    system.device.poke(addr, bytes(raw))
    system.crash()
    system.recover(threads=2)
    # The STATE_LAST region scan backstops the torn page: all committed
    # data survives because commit entries are an accelerator, not the
    # commit point.
    verify(system, oracle)


def test_stray_bitflip_in_free_space_is_harmless():
    system, oracle = build_system(seed=9, transactions=50)
    region = system.scheme.controller.region
    # Flip bytes in a never-allocated block.
    free_block = region.num_blocks - 1
    addr = region.block_base(free_block) + 4 * SLICE_BYTES
    system.device.poke(addr, b"\xde\xad\xbe\xef" * 32)
    system.crash()
    system.recover(threads=2)
    verify(system, oracle)
