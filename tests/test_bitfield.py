"""Bit-level pack/unpack helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitfield import (
    BitStruct,
    Field,
    pack_uint_list,
    unpack_uint_list,
)


def test_simple_round_trip():
    layout = BitStruct([Field("a", 32), Field("b", 4)], total_bytes=8)
    raw = layout.pack({"a": 7, "b": 3})
    assert len(raw) == 8
    assert layout.unpack(raw) == {"a": 7, "b": 3}


def test_unset_fields_default_to_zero():
    layout = BitStruct([Field("a", 8), Field("b", 8)], total_bytes=2)
    assert layout.unpack(layout.pack({"a": 5})) == {"a": 5, "b": 0}


def test_max_value():
    layout = BitStruct([Field("a", 3)], total_bytes=1)
    assert layout.max_value("a") == 7


def test_value_out_of_range_rejected():
    layout = BitStruct([Field("a", 3)], total_bytes=1)
    with pytest.raises(ValueError):
        layout.pack({"a": 8})
    with pytest.raises(ValueError):
        layout.pack({"a": -1})


def test_overflowing_layout_rejected():
    with pytest.raises(ValueError):
        BitStruct([Field("a", 9)], total_bytes=1)


def test_duplicate_field_rejected():
    with pytest.raises(ValueError):
        BitStruct([Field("a", 1), Field("a", 1)], total_bytes=1)


def test_zero_width_field_rejected():
    with pytest.raises(ValueError):
        Field("bad", 0)


def test_wrong_buffer_size_rejected():
    layout = BitStruct([Field("a", 8)], total_bytes=2)
    with pytest.raises(ValueError):
        layout.unpack(b"\x00")


def test_uint_list_round_trip():
    values = [1, 2**39, 0, 42]
    raw = pack_uint_list(values, 40, 40)
    assert unpack_uint_list(raw, 40, 4) == values


def test_uint_list_overflow_rejected():
    with pytest.raises(ValueError):
        pack_uint_list([2**40], 40, 8)
    with pytest.raises(ValueError):
        pack_uint_list([0] * 10, 40, 8)
    with pytest.raises(ValueError):
        unpack_uint_list(b"\x00" * 4, 40, 2)


@given(
    st.lists(
        st.integers(min_value=0, max_value=2**40 - 1),
        min_size=0,
        max_size=8,
    )
)
def test_uint_list_round_trip_property(values):
    raw = pack_uint_list(values, 40, 40)
    assert unpack_uint_list(raw, 40, len(values)) == values


@given(
    st.integers(min_value=0, max_value=2**24 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=15),
)
def test_slice_like_layout_round_trip(next_offset, tx_id, start, state):
    layout = BitStruct(
        [
            Field("next_offset", 24),
            Field("tx_id", 32),
            Field("start", 1),
            Field("state", 4),
        ],
        total_bytes=16,
    )
    values = {
        "next_offset": next_offset,
        "tx_id": tx_id,
        "start": start,
        "state": state,
    }
    assert layout.unpack(layout.pack(values)) == values
