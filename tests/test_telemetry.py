"""The telemetry subsystem: histograms, event ordering, exporters, CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.common.config import SystemConfig
from repro.telemetry import (
    NULL_TELEMETRY,
    EpochSeries,
    Log2Histogram,
    Telemetry,
    load_trace,
    to_perfetto,
    validate_perfetto,
    write_jsonl,
    write_perfetto,
)
from repro.telemetry.__main__ import main as telemetry_main
from repro.txn.system import MemorySystem
from repro.workloads.driver import WorkloadDriver, make_workload


# -- histograms -----------------------------------------------------------------


def _brute_percentile(values, fraction):
    """Nearest-rank percentile over the raw sample."""
    ordered = sorted(values)
    rank = max(1, -(-int(fraction * len(ordered) * 1_000_000) // 1_000_000))
    return ordered[min(rank, len(ordered)) - 1]


class TestLog2Histogram:
    @pytest.mark.parametrize("seed", [11, 42, 777])
    def test_percentiles_bracket_brute_force(self, seed):
        rng = random.Random(seed)
        hist = Log2Histogram()
        values = [rng.expovariate(1 / 500.0) for _ in range(2000)]
        for v in values:
            hist.record(v)
        for fraction in (0.5, 0.95, 0.99):
            exact = _brute_percentile(values, fraction)
            lo, hi = hist.percentile_bounds(fraction)
            assert lo <= exact <= hi
            assert hist.percentile(fraction) == hi

    def test_min_max_mean_exact(self):
        hist = Log2Histogram()
        for v in (3.0, 100.0, 7.0):
            hist.record(v)
        assert hist.max_value == 100.0
        assert hist.min_value == 3.0
        assert hist.mean == pytest.approx(110.0 / 3)
        assert hist.summary()["count"] == 3

    def test_empty_histogram(self):
        hist = Log2Histogram()
        assert hist.percentile(0.5) == 0.0
        assert hist.summary()["count"] == 0

    def test_bucket_index_boundaries(self):
        assert Log2Histogram.bucket_index(0.0) == 0
        assert Log2Histogram.bucket_index(1.0) == 0
        assert Log2Histogram.bucket_index(2.0) == 1
        assert Log2Histogram.bucket_index(2.5) == 2
        assert Log2Histogram.bucket_index(4.0) == 2
        lo, hi = Log2Histogram.bucket_bounds(2)
        assert (lo, hi) == (2.0, 4.0)


class TestEpochSeries:
    def test_coalescing_preserves_total(self):
        series = EpochSeries(epoch_ns=100.0, max_epochs=4)
        for ts in range(0, 10_000, 50):
            series.add(float(ts), 1.0)
        assert series.total == 200.0
        assert len(series.values) <= 4
        # Coalescing doubles the epoch until the window fits.
        assert series.epoch_ns >= 100.0 * (10_000 / (4 * 100.0))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            EpochSeries(epoch_ns=0.0)
        with pytest.raises(ValueError):
            EpochSeries(max_epochs=1)


# -- the hub -------------------------------------------------------------------


class TestHub:
    def test_null_telemetry_is_inert(self):
        NULL_TELEMETRY.emit(1.0, "txn_begin", "core0", {"tx": 1})
        NULL_TELEMETRY.count("x")
        NULL_TELEMETRY.record("h", 5.0)
        NULL_TELEMETRY.on_commit(0, 1, 0.0, 10.0)
        NULL_TELEMETRY.reset_metrics()
        assert NULL_TELEMETRY.summary() == {}
        assert not NULL_TELEMETRY.enabled

    def test_event_bound_counts_drops(self):
        tel = Telemetry(max_events=3)
        for i in range(5):
            tel.emit(float(i), "txn_begin", "core0", {"tx": i})
        assert len(tel.events) == 3
        assert tel.dropped_events == 2
        assert tel.summary()["events"]["dropped"] == 2

    def test_reset_metrics_keeps_events(self):
        tel = Telemetry()
        tel.emit(1.0, "txn_begin", "core0", {"tx": 1})
        tel.count("c", 5)
        tel.record("h", 9.0)
        tel.on_commit(0, 1, 0.0, 4.0)
        tel.reset_metrics()
        assert len(tel.events) == 2  # txn_begin + txn_commit survive
        assert tel.counters == {}
        assert tel.hist("h").count == 0
        assert tel.commit_series.total == 0


# -- a real run: ordering + exporters ------------------------------------------


@pytest.fixture(scope="module")
def recorded():
    telemetry = Telemetry()
    system = MemorySystem(
        SystemConfig.small(), scheme="hoop", telemetry=telemetry
    )
    wl = make_workload(
        "hashmap",
        system,
        seed=3,
        keyspace=1024,
        buckets=256,
    )
    driver = WorkloadDriver(system, threads=1, seed=3)
    driver.run(wl, 120, warmup=10)
    return telemetry


class TestEventOrdering:
    def test_start_and_instant_events_monotone_per_track(self, recorded):
        """Single-threaded runs emit in nondecreasing simulated time.

        ``*_end`` events are stamped at asynchronous completion horizons
        and may legitimately overlap the next start; everything else on
        one track must be monotone.
        """
        last = {}
        for ts, kind, track, _payload in recorded.events:
            if kind.endswith("_end") or kind == "txn_commit":
                continue
            assert ts >= last.get(track, 0.0), (kind, track, ts)
            last[track] = ts

    def test_expected_kinds_present(self, recorded):
        counts = recorded.event_counts()
        for kind in ("txn_begin", "txn_commit", "commit_log_append"):
            assert counts.get(kind, 0) > 0, kind
        assert recorded.hist("commit_latency_ns").count == 120


class TestPerfettoExport:
    def test_round_trips_through_json(self, recorded, tmp_path):
        path = tmp_path / "trace.json"
        write_perfetto(recorded, path)
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert validate_perfetto(events) == []
        phases = {e["ph"] for e in events}
        assert "M" in phases and "X" in phases
        names = {e["name"] for e in events if e["ph"] != "M"}
        assert "txn" in names
        assert "commit_log_append" in names
        # Complete events carry simulated-time spans in microseconds.
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in spans)
        # Timestamps are sorted for stream-friendly consumers.
        ts = [e["ts"] for e in events if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_gc_spans_present_when_gc_ran(self, recorded, tmp_path):
        if recorded.event_counts().get("gc_start", 0) == 0:
            pytest.skip("run too small to trigger GC")
        trace = to_perfetto(recorded)
        gc_spans = [
            e
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "gc"
        ]
        assert gc_spans
        assert all("scanned" in e["args"] for e in gc_spans)

    def test_jsonl_export_greppable(self, recorded, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(recorded, path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(recorded.events)
        first = json.loads(lines[0])
        assert {"ts_ns", "kind", "track"} <= set(first)
        loaded = load_trace(path)
        assert loaded["format"] == "jsonl"
        assert len(loaded["events"]) == count


# -- zero overhead when disabled -------------------------------------------------


def _run_cell(telemetry=None):
    system = MemorySystem(
        SystemConfig.small(), scheme="hoop", telemetry=telemetry
    )
    wl = make_workload("queue", system, seed=5)
    driver = WorkloadDriver(system, threads=2, seed=5)
    return driver.run(wl, 80, warmup=8)


def test_enabled_run_is_bit_identical_to_disabled():
    """Telemetry observes; it must never perturb simulated results."""
    plain = _run_cell()
    observed = _run_cell(Telemetry())
    assert plain.makespan_ns == observed.makespan_ns
    assert plain.mean_latency_ns == observed.mean_latency_ns
    assert plain.max_latency_ns == observed.max_latency_ns
    assert plain.bytes_written == observed.bytes_written
    assert plain.bytes_read == observed.bytes_read
    assert plain.energy_pj == observed.energy_pj
    assert plain.telemetry is None
    assert observed.telemetry is not None
    assert observed.telemetry["histograms"]["commit_latency_ns"]["count"] > 0


# -- CLI -------------------------------------------------------------------------


class TestCLI:
    def test_record_and_summary(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        rc = telemetry_main(
            [
                "--scheme",
                "hoop",
                "--workload",
                "ycsb_a",
                "--scale",
                "smoke",
                "--transactions",
                "40",
                "--threads",
                "2",
                "--out",
                str(out),
                "--jsonl",
                str(jsonl),
            ]
        )
        assert rc == 0
        trace = json.loads(out.read_text())
        assert validate_perfetto(trace["traceEvents"]) == []
        assert jsonl.exists()
        capsys.readouterr()
        assert telemetry_main(["--summary", str(out)]) == 0
        summary_text = capsys.readouterr().out
        assert "commit_latency_ns" in summary_text
        assert "structure: OK" in summary_text

    def test_record_requires_out(self, capsys):
        with pytest.raises(SystemExit):
            telemetry_main(["--scheme", "hoop"])

    def test_summary_flags_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"traceEvents": [{"ph": "X", "ts": 1.0}]})
        )
        assert telemetry_main(["--summary", str(bad)]) == 1
