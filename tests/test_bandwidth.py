"""Channel model: backlog, priority reads, utilization, drains."""

import pytest

from repro.nvm.bandwidth import ChannelModel


@pytest.fixture
def channel():
    return ChannelModel(1.0)  # ~1.07 bytes/ns


def test_transfer_time_scales_with_bytes(channel):
    assert channel.transfer_time_ns(128) == pytest.approx(
        2 * channel.transfer_time_ns(64)
    )


def test_idle_read_has_no_wait(channel):
    done = channel.read(100.0, 64)
    assert done == pytest.approx(100.0 + channel.transfer_time_ns(64))


def test_queued_writes_accumulate_backlog(channel):
    channel.write_queued(0.0, 1024)
    channel.write_queued(0.0, 1024)
    assert channel.backlog_ns == pytest.approx(
        2 * channel.transfer_time_ns(1024)
    )


def test_backlog_drains_with_time(channel):
    channel.write_queued(0.0, 1024)
    service = channel.transfer_time_ns(1024)
    channel.read(service / 2, 8)
    assert channel.backlog_ns == pytest.approx(
        service / 2, rel=0.05
    )
    channel.read(10 * service, 8)
    assert channel.backlog_ns == 0.0


def test_sync_write_waits_behind_backlog(channel):
    channel.write_queued(0.0, 4096)
    backlog = channel.backlog_ns
    done = channel.write_sync(0.0, 64)
    assert done == pytest.approx(
        backlog + channel.transfer_time_ns(64)
    )


def test_drain_returns_backlog_horizon(channel):
    channel.write_queued(0.0, 2048)
    assert channel.drain(0.0) == pytest.approx(channel.backlog_ns)
    # After draining logically, waiting that long clears the backlog.
    horizon = channel.drain(0.0)
    assert channel.drain(horizon) == pytest.approx(horizon)


def test_utilization_rises_with_traffic(channel):
    assert channel.utilization() == 0.0
    for i in range(100):
        channel.write_queued(i * 10.0, 4096)
    assert channel.utilization() > 0.3


def test_utilization_decays_when_idle(channel):
    for i in range(50):
        channel.write_queued(i * 10.0, 4096)
    busy = channel.utilization()
    channel.read(1e7, 8)  # much later
    assert channel.utilization() < busy


def test_read_contention_grows_with_utilization():
    quiet = ChannelModel(1.0)
    loaded = ChannelModel(1.0)
    for i in range(200):
        loaded.write_queued(i * 5.0, 4096)
    t_quiet = quiet.read(2000.0, 64) - 2000.0
    t_loaded = loaded.read(2000.0, 64) - 2000.0
    assert t_loaded > t_quiet


def test_out_of_order_arrivals_do_not_create_phantom_queues(channel):
    # A thread far in the future reserves...
    channel.write_queued(1_000_000.0, 64)
    # ... and a laggard thread's read at an earlier timestamp must not
    # wait a million nanoseconds (the old busy-until artifact).
    done = channel.read(10.0, 64)
    assert done - 10.0 < 1000.0


def test_stats_accumulate(channel):
    channel.read(0.0, 64)
    channel.write_queued(0.0, 64)
    channel.write_sync(0.0, 64)
    assert channel.stats.reservations == 3
    assert channel.stats.bytes_transferred == 192
    assert channel.stats.busy_ns > 0


def test_zero_byte_transfers_are_free(channel):
    assert channel.read(5.0, 0) == 5.0
    assert channel.write_queued(5.0, 0) == 5.0
    assert channel.write_sync(5.0, 0) == 5.0
    assert channel.stats.reservations == 0


def test_reset_clears_stats_not_backlog(channel):
    channel.write_queued(0.0, 4096)
    backlog = channel.backlog_ns
    channel.reset()
    assert channel.stats.reservations == 0
    assert channel.backlog_ns == backlog
