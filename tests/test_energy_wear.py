"""Energy meter and wear tracker."""

import pytest

from repro.common.config import EnergyConfig
from repro.nvm.energy import EnergyMeter
from repro.nvm.wear import WearTracker


class TestEnergyMeter:
    def test_read_hit_cheaper_than_miss(self):
        meter = EnergyMeter()
        hit = meter.record_read(64, row_buffer_hit=True)
        miss = meter.record_read(64, row_buffer_hit=False)
        assert miss > hit

    def test_write_dominates_read(self):
        meter = EnergyMeter()
        read = meter.record_read(64, row_buffer_hit=False)
        write = meter.record_write(64, row_buffer_hit=False)
        assert write > read  # 16.82 pJ/bit array writes dominate

    def test_table_ii_read_numbers(self):
        meter = EnergyMeter(EnergyConfig())
        pj = meter.record_read(1, row_buffer_hit=True)
        assert pj == pytest.approx(8 * 0.93)

    def test_totals_and_reset(self):
        meter = EnergyMeter()
        meter.record_read(10, True)
        meter.record_write(10, True)
        assert meter.total_pj == pytest.approx(
            meter.read_pj + meter.write_pj
        )
        assert meter.total_nj == pytest.approx(meter.total_pj / 1000)
        snap = meter.snapshot()
        assert snap["total_pj"] == pytest.approx(meter.total_pj)
        meter.reset()
        assert meter.total_pj == 0


class TestWearTracker:
    def test_single_block_attribution(self):
        wear = WearTracker(block_bytes=1024)
        wear.record_write(100, 64)
        assert wear.writes_for_block(0) == 64
        assert wear.touched_blocks == 1

    def test_straddling_write_split(self):
        wear = WearTracker(block_bytes=1024)
        wear.record_write(1000, 100)
        assert wear.writes_for_block(0) == 24
        assert wear.writes_for_block(1) == 76
        assert wear.total_bytes == 100

    def test_multi_block_spanning_write(self):
        wear = WearTracker(block_bytes=100)
        wear.record_write(50, 300)
        assert wear.total_bytes == 300
        assert wear.touched_blocks == 4

    def test_spread_uniform_is_one(self):
        wear = WearTracker(block_bytes=100)
        for block in range(10):
            wear.record_write(block * 100, 50)
        assert wear.spread() == pytest.approx(1.0)

    def test_spread_detects_hotspots(self):
        wear = WearTracker(block_bytes=100)
        wear.record_write(0, 90)
        wear.record_write(100, 10)
        assert wear.spread() > 1.5

    def test_hottest_ranking(self):
        wear = WearTracker(block_bytes=100)
        wear.record_write(0, 10)
        wear.record_write(500, 90)
        assert wear.hottest(1) == [(5, 90)]

    def test_negative_or_zero_ignored(self):
        wear = WearTracker()
        wear.record_write(0, 0)
        assert wear.total_bytes == 0

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            WearTracker(block_bytes=0)
