"""§III-I extensions and ablation knobs: condensing, packing, coalescing."""

import dataclasses
import random

import pytest

from repro import MemorySystem, SystemConfig
from repro.common.config import GCConfig, HoopConfig
from repro.common.errors import ConfigError
from repro.core.mapping_table import MappingTable, OOPLocation


def loc(seq, slice_index=5, slot=0, in_buffer=False):
    return OOPLocation(
        in_buffer=in_buffer,
        slice_index=slice_index,
        word_slot=slot,
        seq=seq,
        tx_id=1,
    )


class TestMappingCondensing:
    def test_full_same_slice_line_condenses(self):
        table = MappingTable(64, condense=True)
        for i in range(8):
            table.record(0x1000 + i * 8, loc(seq=i + 1, slot=i))
        assert table.entries == 1  # eight words, one entry
        assert table.stats.condensed_lines == 1
        # Lookups unchanged.
        assert len(table.lookup_line(0x1000)) == 8

    def test_mixed_slice_line_does_not_condense(self):
        table = MappingTable(64, condense=True)
        for i in range(8):
            table.record(
                0x1000 + i * 8, loc(seq=i + 1, slice_index=5 + (i % 2))
            )
        assert table.entries == 8

    def test_partial_line_does_not_condense(self):
        table = MappingTable(64, condense=True)
        for i in range(7):
            table.record(0x1000 + i * 8, loc(seq=i + 1))
        assert table.entries == 7

    def test_update_to_other_slice_uncondenses(self):
        table = MappingTable(64, condense=True)
        for i in range(8):
            table.record(0x1000 + i * 8, loc(seq=i + 1))
        assert table.entries == 1
        table.record(0x1000, loc(seq=99, slice_index=77))
        assert table.entries == 8

    def test_removal_restores_accounting(self):
        table = MappingTable(64, condense=True)
        for i in range(8):
            table.record(0x1000 + i * 8, loc(seq=i + 1))
        table.remove_words([0x1000 + i * 8 for i in range(8)])
        assert table.entries == 0

    def test_remove_if_stale_on_condensed_line(self):
        table = MappingTable(64, condense=True)
        for i in range(8):
            table.record(0x1000 + i * 8, loc(seq=i + 1))
        assert table.remove_if_stale(0x1000, migrated_seq=1)
        assert table.entries == 7

    def test_disabled_by_default(self):
        table = MappingTable(64)
        for i in range(8):
            table.record(0x1000 + i * 8, loc(seq=i + 1))
        assert table.entries == 8

    def test_condensed_system_still_crash_consistent(self):
        config = SystemConfig.small()
        hoop = dataclasses.replace(config.hoop, condense_mapping=True)
        config = config.replace(hoop=hoop)
        system = MemorySystem(config, scheme="hoop")
        rng = random.Random(8)
        addrs = [system.allocate(64) for _ in range(16)]
        oracle = {}
        for _ in range(150):
            with system.transaction(rng.randrange(4)) as tx:
                # Full-line writes so condensing actually triggers.
                addr = rng.choice(addrs)
                value = rng.getrandbits(64).to_bytes(8, "little") * 8
                tx.store(addr, value)
                oracle[addr] = value
        stats = system.scheme.controller.mapping.stats
        assert stats.condensed_lines > 0
        system.crash()
        system.recover(threads=2)
        for addr, value in oracle.items():
            assert system.durable_state(addr, 64) == value

    def test_condensing_reduces_peak_occupancy(self):
        def peak(condense):
            config = SystemConfig.small()
            hoop = dataclasses.replace(
                config.hoop,
                condense_mapping=condense,
                gc=GCConfig(period_ns=1e15),
            )
            config = config.replace(hoop=hoop)
            system = MemorySystem(config, scheme="hoop")
            addrs = [system.allocate(64) for _ in range(32)]
            for addr in addrs:
                with system.transaction() as tx:
                    tx.store(addr, b"z" * 64)
            return system.scheme.controller.mapping.stats.peak_entries

        assert peak(True) < peak(False)


class TestPackingAblation:
    def _traffic(self, degree):
        config = SystemConfig.small()
        hoop = dataclasses.replace(config.hoop, packing_degree=degree)
        config = config.replace(hoop=hoop)
        system = MemorySystem(config, scheme="hoop")
        rng = random.Random(3)
        addrs = [system.allocate(64) for _ in range(16)]
        for _ in range(100):
            with system.transaction() as tx:
                for _ in range(6):
                    tx.store_u64(
                        rng.choice(addrs) + 8 * rng.randrange(8),
                        rng.getrandbits(63),
                    )
        system.scheme.quiesce(system.now_ns)
        return system.device.stats.bytes_written

    def test_unpacked_writes_far_more(self):
        # One word per 128-byte slice vs eight: the data-packing claim.
        assert self._traffic(1) > 2.5 * self._traffic(None)

    def test_intermediate_degrees_monotone(self):
        t1, t4, t8 = (
            self._traffic(1),
            self._traffic(4),
            self._traffic(8),
        )
        assert t1 > t4 > t8 * 0.95

    def test_invalid_degree_rejected(self):
        with pytest.raises(ConfigError):
            HoopConfig(packing_degree=0)
        with pytest.raises(ConfigError):
            HoopConfig(packing_degree=9)

    def test_unpacked_still_crash_consistent(self):
        config = SystemConfig.small()
        hoop = dataclasses.replace(config.hoop, packing_degree=1)
        config = config.replace(hoop=hoop)
        system = MemorySystem(config, scheme="hoop")
        addr = system.allocate(64)
        with system.transaction() as tx:
            tx.store(addr, b"unpacked" * 8)
        system.crash()
        system.recover()
        assert system.durable_state(addr, 64) == b"unpacked" * 8


class TestCoalescingAblation:
    def _gc_migrated(self, coalesce):
        config = SystemConfig.small()
        hoop = dataclasses.replace(
            config.hoop,
            gc=GCConfig(period_ns=1e15, coalesce=coalesce),
        )
        config = config.replace(hoop=hoop)
        system = MemorySystem(config, scheme="hoop")
        addr = system.allocate(64)
        for i in range(50):
            with system.transaction() as tx:
                tx.store_u64(addr, i)
        report = system.scheme.controller.gc.run(
            system.now_ns, on_demand=True
        )
        return report, system

    def test_coalescing_collapses_overwrites(self):
        report, _ = self._gc_migrated(True)
        assert report.words_migrated == 1
        assert report.data_reduction_ratio == pytest.approx(0.98)

    def test_ablated_gc_writes_every_version(self):
        report, system = self._gc_migrated(False)
        assert report.words_migrated == 50
        assert report.data_reduction_ratio == 0.0
        # Correctness holds either way: the newest version lands last.
        assert int.from_bytes(system.durable_state(
            system.heap.base, 8), "little") == 49
