"""End-to-end integration: mixed structures, GC cycles, crash, recover."""

import random

import pytest

from repro import MemorySystem, SystemConfig
from repro.workloads.structures import (
    PersistentBTree,
    PersistentHashMap,
    PersistentQueue,
    PersistentRBTree,
)


def test_mixed_structures_share_one_system():
    """Several structures coexist in one persistent heap under HOOP."""
    rng = random.Random(31)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    hmap = PersistentHashMap(system, buckets=64, value_bytes=16)
    tree = PersistentRBTree(system)
    queue = PersistentQueue(system, value_bytes=8)

    map_model, tree_model, queue_model = {}, {}, []
    for i in range(300):
        core = rng.randrange(4)
        kind = rng.randrange(3)
        with system.transaction(core) as tx:
            if kind == 0:
                key = rng.randrange(128)
                value = rng.getrandbits(64).to_bytes(8, "little") * 2
                hmap.insert(tx, key, value)
                map_model[key] = value
            elif kind == 1:
                key = rng.randrange(512)
                tree.insert(tx, key, key * 7)
                tree_model[key] = key * 7
            else:
                value = i.to_bytes(8, "little")
                queue.enqueue(tx, value)
                queue_model.append(value)
        if i % 60 == 59:
            system.scheme.controller.gc.run(system.now_ns, on_demand=True)

    # Verify live state through the caches.
    with system.transaction() as tx:
        for key, value in map_model.items():
            assert hmap.get(tx, key) == value
        for key, value in tree_model.items():
            assert tree.search(tx, key) == value
    tree.check_invariants()

    # Crash, recover, verify durable state.
    system.crash()
    report = system.recover(threads=4)
    assert report is not None
    with system.transaction() as tx:
        for key, value in map_model.items():
            assert hmap.get(tx, key) == value
        for key, value in tree_model.items():
            assert tree.search(tx, key) == value
        for expected in queue_model:
            assert queue.dequeue(tx) == expected
    tree.check_invariants()


def test_hoop_survives_repeated_crash_cycles():
    rng = random.Random(77)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    tree = PersistentBTree(system, t=3)
    model = {}
    for cycle in range(4):
        for _ in range(80):
            key = rng.randrange(4096)
            value = rng.getrandbits(63)
            with system.transaction(rng.randrange(4)) as tx:
                tree.insert(tx, key, value)
            model[key] = value
        system.crash()
        system.recover(threads=1 + cycle)
        assert tree.check_invariants() == len(model)
        with system.transaction() as tx:
            for key, value in model.items():
                assert tree.search(tx, key) == value


def test_wear_leveling_claim():
    """§III-D: round-robin allocation ages OOP blocks uniformly."""
    rng = random.Random(13)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    addrs = [system.allocate(64) for _ in range(16)]
    for i in range(2500):
        with system.transaction() as tx:
            for _ in range(6):
                tx.store_u64(
                    rng.choice(addrs) + 8 * rng.randrange(8),
                    rng.getrandbits(63),
                )
        if i % 200 == 199:
            system.scheme.controller.gc.run(system.now_ns, on_demand=True)
    region = system.scheme.controller.region
    # Several blocks cycled through the rotation.
    assert region.stats.blocks_reclaimed >= 3
    wear = system.device.wear
    assert wear.spread() < 3.0  # no block ages wildly faster than average


def test_mapping_table_pressure_triggers_on_demand_gc():
    import dataclasses

    from repro.common.config import GCConfig, HoopConfig
    from repro.common.units import KB

    config = SystemConfig.small()
    hoop = dataclasses.replace(
        config.hoop,
        mapping_table_bytes=2 * KB,  # 128 entries
        gc=GCConfig(period_ns=1e15),  # periodic GC effectively off
    )
    config = config.replace(hoop=hoop)
    system = MemorySystem(config, scheme="hoop")
    rng = random.Random(4)
    addrs = [system.allocate(64) for _ in range(64)]
    for _ in range(120):
        with system.transaction() as tx:
            for _ in range(4):
                tx.store_u64(
                    rng.choice(addrs) + 8 * rng.randrange(8),
                    rng.getrandbits(63),
                )
    assert system.scheme.hoop_stats.on_demand_gc > 0
    # Reads remain correct throughout.
    assert system.scheme.controller.mapping.stats.overflow_events >= 0


def test_read_profile_statistics_available():
    rng = random.Random(9)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    addrs = [system.allocate(64) for _ in range(256)]
    for _ in range(200):
        with system.transaction(rng.randrange(4)) as tx:
            tx.store_u64(rng.choice(addrs), rng.getrandbits(63))
    # Thrash the cache with reads so fills exercise the mapping table.
    for addr in addrs:
        system.load(addr, 8, core=rng.randrange(4))
    stats = system.scheme.hoop_stats
    assert stats.mapping_hits_on_miss + stats.mapping_misses_on_miss > 0
