"""Opt-Redo and Opt-Undo scheme behaviours."""

import pytest

from repro.common.config import SystemConfig
from repro.common.units import MB
from repro.nvm.device import NVMDevice
from repro.schemes.redo import OptRedoScheme
from repro.schemes.undo import OptUndoScheme


def make(scheme_cls):
    config = SystemConfig.small(nvm_capacity=16 * MB)
    device = NVMDevice(config.nvm)
    return scheme_cls(config, device)


def run_tx(scheme, writes, core=0):
    tx_id, now = scheme.tx_begin(core, 0.0)
    for addr, value in writes:
        line_addr = addr & ~63
        line = bytearray(scheme.device.peek(line_addr, 64))
        line[addr - line_addr : addr - line_addr + 8] = value
        now = scheme.on_store(
            core, tx_id, addr, 8, line_addr, bytes(line), now
        )
    return scheme.tx_end(core, tx_id, now), tx_id


def word(i):
    return i.to_bytes(8, "little")


class TestOptRedo:
    def test_data_not_in_place_before_checkpoint(self):
        scheme = make(OptRedoScheme)
        run_tx(scheme, [(0x1000, word(1))])
        # Home still stale; the log holds the redo image.
        assert scheme.device.peek(0x1000, 8) == bytes(8)

    def test_fill_serves_committed_data_from_shadow(self):
        scheme = make(OptRedoScheme)
        run_tx(scheme, [(0x1000, word(2))])
        data, extra = scheme.fill_line(0x1000, 0.0)
        assert data[:8] == word(2)
        assert scheme.shadow_hits == 1

    def test_checkpoint_applies_in_place(self):
        scheme = make(OptRedoScheme)
        run_tx(scheme, [(0x1000, word(3))])
        scheme.quiesce(0.0)
        assert scheme.device.peek(0x1000, 8) == word(3)

    def test_recovery_replays_committed(self):
        scheme = make(OptRedoScheme)
        run_tx(scheme, [(0x1000, word(4)), (0x2000, word(5))])
        scheme.crash()
        outcome = scheme.recover()
        assert outcome.committed_transactions == 1
        assert scheme.device.peek(0x1000, 8) == word(4)
        assert scheme.device.peek(0x2000, 8) == word(5)

    def test_recovery_discards_uncommitted(self):
        scheme = make(OptRedoScheme)
        tx_id, now = scheme.tx_begin(0, 0.0)
        line = bytes(64)
        scheme.on_store(0, tx_id, 0x1000, 8, 0x1000, line, now)
        scheme.crash()
        outcome = scheme.recover()
        assert outcome.committed_transactions == 0
        assert scheme.device.peek(0x1000, 8) == bytes(8)

    def test_commit_latency_includes_drain_and_record(self):
        scheme = make(OptRedoScheme)
        done, _ = run_tx(scheme, [(0x1000 + 64 * i, word(i)) for i in range(4)])
        assert done >= scheme.config.nvm.write_latency_ns

    def test_log_traffic_two_lines_per_updated_line(self):
        scheme = make(OptRedoScheme)
        run_tx(scheme, [(0x1000, word(1)), (0x1008, word(2))])
        # One updated line: 128 B log entry + 64 B commit record minimum.
        assert scheme.device.stats.bytes_written >= 192

    def test_persistent_eviction_dropped(self):
        scheme = make(OptRedoScheme)
        tx_id, _ = scheme.tx_begin(0, 0.0)
        before = scheme.device.stats.bytes_written
        scheme.on_evict(0x1000, b"x" * 64, True, True, tx_id, 0.0)
        assert scheme.device.stats.bytes_written == before


class TestOptUndo:
    def test_pre_images_logged_once_per_line(self):
        scheme = make(OptUndoScheme)
        run_tx(
            scheme,
            [(0x1000, word(1)), (0x1008, word(2)), (0x2000, word(3))],
        )
        # Two distinct lines -> two ordering events.
        assert scheme.stats.ordering_stalls == 2

    def test_commit_writes_data_in_place(self):
        scheme = make(OptUndoScheme)
        run_tx(scheme, [(0x1000, word(7))])
        assert scheme.device.peek(0x1000, 8) == word(7)

    def test_rollback_restores_pre_image(self):
        scheme = make(OptUndoScheme)
        run_tx(scheme, [(0x1000, word(1))])  # committed: home holds 1
        tx_id, now = scheme.tx_begin(0, 0.0)
        line = bytearray(scheme.device.peek(0x1000, 64))
        line[:8] = word(99)
        now = scheme.on_store(0, tx_id, 0x1000, 8, 0x1000, bytes(line), now)
        # Simulate the in-place write racing ahead (eviction-like) by the
        # commit path of a crash: the undo image must restore word(1).
        scheme.device.poke(0x1000, word(99))
        scheme.crash()
        outcome = scheme.recover()
        assert outcome.rolled_back_transactions == 1
        assert scheme.device.peek(0x1000, 8) == word(1)

    def test_committed_txs_not_rolled_back(self):
        scheme = make(OptUndoScheme)
        run_tx(scheme, [(0x1000, word(5))])
        scheme.crash()
        outcome = scheme.recover()
        assert outcome.committed_transactions == 1
        assert scheme.device.peek(0x1000, 8) == word(5)

    def test_undo_latency_above_redo(self):
        undo = make(OptUndoScheme)
        redo = make(OptRedoScheme)
        writes = [(0x1000 + i * 64, word(i)) for i in range(4)]
        undo_done, _ = run_tx(undo, list(writes))
        redo_done, _ = run_tx(redo, list(writes))
        assert undo_done >= redo_done

    def test_fill_serves_open_tx_lines(self):
        scheme = make(OptUndoScheme)
        tx_id, now = scheme.tx_begin(0, 0.0)
        line = bytearray(64)
        line[:8] = word(8)
        scheme.on_store(0, tx_id, 0x3000, 8, 0x3000, bytes(line), now)
        data, _ = scheme.fill_line(0x3000, 0.0)
        assert data[:8] == word(8)
