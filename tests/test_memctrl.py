"""Memory port and periodic trigger."""

import pytest

from repro.common.config import NVMConfig
from repro.common.units import MB
from repro.memctrl.port import MemoryPort
from repro.memctrl.scheduler import PeriodicTrigger
from repro.nvm.device import NVMDevice


@pytest.fixture
def port():
    return MemoryPort(NVMDevice(NVMConfig(capacity=16 * MB)))


class TestMemoryPort:
    def test_sync_write_waits(self, port):
        done = port.sync_write(0, b"x" * 64, 100.0)
        assert done >= 100.0 + port.device.config.write_latency_ns
        assert port.stats.sync_writes == 1
        assert port.stats.sync_wait_ns > 0

    def test_async_write_content_lands(self, port):
        port.async_write(0, b"hello", 0.0)
        assert port.device.peek(0, 5) == b"hello"
        assert port.stats.async_writes == 1

    def test_read_round_trip(self, port):
        port.sync_write(64, b"data!", 0.0)
        data, done = port.read(64, 5, 500.0)
        assert data == b"data!"
        assert done > 500.0

    def test_drain_waits_for_queued_writes(self, port):
        base = port.drain(0.0)
        assert base == 0.0
        port.async_write(0, b"y" * 4096, 0.0)
        drained = port.drain(0.0)
        assert drained > 0.0

    def test_traffic_accounting(self, port):
        port.sync_write(0, b"a" * 10, 0.0)
        port.async_write(0, b"b" * 20, 0.0)
        port.read(0, 30, 0.0)
        assert port.bytes_written == 30
        assert port.stats.read_bytes == 30
        port.reset_stats()
        assert port.bytes_written == 0


class TestPeriodicTrigger:
    def test_not_due_before_period(self):
        trigger = PeriodicTrigger(100.0)
        assert not trigger.due(99.0)
        assert trigger.due(100.0)

    def test_fire_consumes_periods(self):
        trigger = PeriodicTrigger(100.0)
        assert trigger.fire(50.0) == 0
        assert trigger.fire(100.0) == 1
        assert not trigger.due(150.0)
        assert trigger.due(200.0)

    def test_fire_counts_missed_periods(self):
        trigger = PeriodicTrigger(100.0)
        assert trigger.fire(550.0) == 5
        assert trigger.next_fire_ns == 600.0
        assert trigger.fire_count == 5
        # One servicing consumed five due periods: four were skipped.
        assert trigger.missed_periods == 4

    def test_missed_periods_accumulate_across_fires(self):
        trigger = PeriodicTrigger(100.0)
        assert trigger.fire(100.0) == 1
        assert trigger.missed_periods == 0
        assert trigger.fire(450.0) == 3
        assert trigger.missed_periods == 2
        assert trigger.fire(460.0) == 0
        assert trigger.missed_periods == 2
        assert trigger.fire_count == 4

    def test_reschedule(self):
        trigger = PeriodicTrigger(100.0)
        trigger.reschedule(10.0, 500.0)
        assert not trigger.due(505.0)
        assert trigger.due(510.0)

    def test_reschedule_mid_period_restarts_cadence(self):
        # Half a period has elapsed; rescheduling must restart the full
        # new period from *now*, not inherit the old deadline.
        trigger = PeriodicTrigger(100.0)
        assert trigger.fire(50.0) == 0
        trigger.reschedule(200.0, 50.0)
        assert not trigger.due(100.0)  # old deadline no longer applies
        assert not trigger.due(249.0)
        assert trigger.due(250.0)
        assert trigger.fire(250.0) == 1
        assert trigger.fire_count == 1
        assert trigger.missed_periods == 0

    def test_reschedule_to_shorter_period_can_fire_earlier(self):
        trigger = PeriodicTrigger(1000.0)
        trigger.reschedule(10.0, 0.0)
        assert trigger.fire(10.0) == 1
        assert trigger.next_fire_ns == 20.0

    def test_start_offset(self):
        trigger = PeriodicTrigger(100.0, start_ns=1000.0)
        assert not trigger.due(1099.0)
        assert trigger.due(1100.0)

    def test_start_offset_fire_counts_from_offset(self):
        trigger = PeriodicTrigger(100.0, start_ns=1000.0)
        # Simulated time well past zero but before the first deadline:
        # nothing is due, nothing is "missed".
        assert trigger.fire(1050.0) == 0
        assert trigger.missed_periods == 0
        assert trigger.fire(1350.0) == 3
        assert trigger.next_fire_ns == 1400.0
        assert trigger.missed_periods == 2

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTrigger(0)
        trigger = PeriodicTrigger(10.0)
        with pytest.raises(ValueError):
            trigger.reschedule(-5.0, 0.0)
