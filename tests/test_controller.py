"""HOOP controller: load reconstruction, evictions, recovery wiring."""

import pytest

from repro.common.config import SystemConfig
from repro.common.units import MB
from repro.core.controller import HoopController
from repro.nvm.device import NVMDevice


@pytest.fixture
def ctrl():
    config = SystemConfig.small(nvm_capacity=16 * MB)
    device = NVMDevice(config.nvm)
    return HoopController(config, device)


def store(ctrl, core, tx_id, addr, value):
    line_addr = addr & ~63
    line = bytearray(ctrl.port.device.peek(line_addr, 64))
    # Reflect cached newer words through the mapping for realism: the
    # hierarchy normally provides the post-store line; emulate that.
    line[addr - line_addr : addr - line_addr + 8] = value
    ctrl.tx_store(core, tx_id, addr, 8, line_addr, bytes(line), 0.0)


def word(i):
    return i.to_bytes(8, "little")


class TestLoadPath:
    def test_fill_from_home_when_unmapped(self, ctrl):
        ctrl.port.device.poke(0x1000, b"homedata")
        data, extra = ctrl.fill_line(0x1000, 0.0)
        assert data[:8] == b"homedata"
        assert ctrl.stats.mapping_misses_on_miss == 1

    def test_fill_reconstructs_from_buffer(self, ctrl):
        ctrl.tx_begin(0, 1, 0.0)
        store(ctrl, 0, 1, 0x1000, word(77))
        data, _ = ctrl.fill_line(0x1000, 0.0)
        assert data[:8] == word(77)
        assert ctrl.stats.buffered_word_reads >= 1

    def test_fill_reconstructs_from_slices(self, ctrl):
        ctrl.tx_begin(0, 1, 0.0)
        store(ctrl, 0, 1, 0x1000, word(88))
        ctrl.tx_end(0, 1, 0.0)  # flushed to the OOP region
        data, _ = ctrl.fill_line(0x1000, 0.0)
        assert data[:8] == word(88)
        assert ctrl.stats.mapping_hits_on_miss >= 1

    def test_parallel_read_counted_for_partial_lines(self, ctrl):
        ctrl.port.device.poke(0x1008, b"OLDVALUE")
        ctrl.tx_begin(0, 1, 0.0)
        store(ctrl, 0, 1, 0x1000, word(1))  # covers 1 of 8 words
        ctrl.tx_end(0, 1, 0.0)
        data, _ = ctrl.fill_line(0x1000, 0.0)
        assert data[:8] == word(1)
        assert data[8:16] == b"OLDVALUE"  # home contributed the rest
        assert ctrl.stats.parallel_reads >= 1

    def test_oop_only_read_when_line_fully_mapped(self, ctrl):
        ctrl.tx_begin(0, 1, 0.0)
        for i in range(8):
            store(ctrl, 0, 1, 0x1000 + i * 8, word(i))
        ctrl.tx_end(0, 1, 0.0)
        before = ctrl.stats.oop_only_reads
        data, _ = ctrl.fill_line(0x1000, 0.0)
        assert [data[i * 8] for i in range(8)] == list(range(8))
        assert ctrl.stats.oop_only_reads > before

    def test_eviction_buffer_hit(self, ctrl):
        ctrl.tx_begin(0, 1, 0.0)
        store(ctrl, 0, 1, 0x1000, word(5))
        ctrl.tx_end(0, 1, 0.0)
        ctrl.gc.run(0.0, on_demand=True)  # migrates and stages the line
        data, extra = ctrl.fill_line(0x1000, 0.0)
        assert data[:8] == word(5)
        assert ctrl.stats.eviction_buffer_hits >= 1


class TestEvictions:
    def test_persistent_dirty_eviction_writes_nothing(self, ctrl):
        before = ctrl.port.device.stats.bytes_written
        ctrl.tx_begin(0, 1, 0.0)
        store(ctrl, 0, 1, 0x1000, word(9))
        traffic = ctrl.port.device.stats.bytes_written
        ctrl.on_evict(0x1000, b"x" * 64, True, True, 1, 0.0)
        assert ctrl.port.device.stats.bytes_written == traffic
        assert ctrl.stats.persistent_evictions_dropped == 1

    def test_nonpersistent_dirty_eviction_writes_home(self, ctrl):
        ctrl.on_evict(0x2000, b"y" * 64, True, False, 0, 0.0)
        assert ctrl.port.device.peek(0x2000, 64) == b"y" * 64

    def test_clean_eviction_free(self, ctrl):
        before = ctrl.port.device.stats.bytes_written
        ctrl.on_evict(0x2000, b"z" * 64, False, False, 0, 0.0)
        assert ctrl.port.device.stats.bytes_written == before


class TestCommitAndRecovery:
    def test_commit_point_is_last_slice(self, ctrl):
        ctrl.tx_begin(0, 1, 0.0)
        store(ctrl, 0, 1, 0x1000, word(1))
        # Crash before Tx_end: nothing committed.
        ctrl.crash()
        report = ctrl.recover()
        assert report.committed_transactions == 0
        assert ctrl.port.device.peek(0x1000, 8) == bytes(8)

    def test_committed_tx_recovered_without_flushed_pages(self, ctrl):
        ctrl.tx_begin(0, 1, 0.0)
        store(ctrl, 0, 1, 0x1000, word(42))
        ctrl.tx_end(0, 1, 0.0)
        ctrl.crash()
        report = ctrl.recover()
        assert report.committed_transactions == 1
        assert ctrl.port.device.peek(0x1000, 8) == word(42)

    def test_recover_clears_indirection(self, ctrl):
        ctrl.tx_begin(0, 1, 0.0)
        store(ctrl, 0, 1, 0x1000, word(1))
        ctrl.tx_end(0, 1, 0.0)
        ctrl.crash()
        ctrl.recover()
        assert ctrl.mapping.entries == 0
        assert ctrl.eviction_buffer.occupancy == 0
        assert ctrl.commit_log.live_count == 0

    def test_quiesce_migrates_everything(self, ctrl):
        ctrl.tx_begin(0, 1, 0.0)
        store(ctrl, 0, 1, 0x1000, word(3))
        ctrl.tx_end(0, 1, 0.0)
        ctrl.quiesce(0.0)
        assert ctrl.commit_log.live_count == 0
        assert ctrl.port.device.peek(0x1000, 8) == word(3)

    def test_tx_end_read_only_is_free(self, ctrl):
        writes = ctrl.port.device.stats.bytes_written
        ctrl.tx_begin(0, 1, 0.0)
        done = ctrl.tx_end(0, 1, 5.0)
        assert done == 5.0
        assert ctrl.port.device.stats.bytes_written == writes
