"""The example scripts run end-to-end (small arguments)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "atomic durability held" in result.stdout


def test_kvstore_ycsb():
    result = run_example(
        "kvstore_ycsb.py", "--transactions", "120", "--records", "256"
    )
    assert result.returncode == 0, result.stderr
    assert "hoop" in result.stdout
    assert "HOOP vs Opt-Redo" in result.stdout


def test_crash_recovery_demo():
    result = run_example("crash_recovery_demo.py", "--rounds", "2")
    assert result.returncode == 0, result.stderr
    assert "all committed data survived" in result.stdout


def test_gc_coalescing():
    result = run_example("gc_coalescing.py", "--window", "10", "200")
    assert result.returncode == 0, result.stderr
    assert "reduction" in result.stdout
    assert "wear" in result.stdout


def test_trace_replay():
    result = run_example("trace_replay.py", "--transactions", "60")
    assert result.returncode == 0, result.stderr
    assert "byte-identical event stream" in result.stdout
    assert "hoop" in result.stdout
