"""The §III-I extension: multiple memory controllers with 2PC."""

import random

import pytest

from repro import MemorySystem, SystemConfig
from repro.common.errors import ConfigError
from repro.core.multi_controller import MultiControllerHoopScheme
from repro.nvm.device import NVMDevice


def make_system(controllers=2):
    config = SystemConfig.small()
    device = NVMDevice(config.nvm)
    scheme = MultiControllerHoopScheme(config, device, controllers)
    return MemorySystem(config, scheme=scheme)


def test_registry_name():
    system = MemorySystem(SystemConfig.small(), scheme="hoop-mc")
    assert system.scheme.name == "hoop-mc"
    assert len(system.scheme.controllers) == 2


def test_needs_at_least_two_controllers():
    config = SystemConfig.small()
    with pytest.raises(ConfigError):
        MultiControllerHoopScheme(config, NVMDevice(config.nvm), 1)


def test_lines_interleave_across_controllers():
    system = make_system()
    scheme = system.scheme
    owners = {scheme._owner(i * 64) for i in range(8)}
    assert owners == {0, 1}


def test_cross_controller_transaction_commits_atomically():
    system = make_system()
    # Two adjacent lines land on different controllers.
    base = system.allocate(128)
    with system.transaction() as tx:
        tx.store_u64(base, 111)
        tx.store_u64(base + 64, 222)
    assert system.scheme.two_phase_commits == 1
    assert system.load(base, 8) == (111).to_bytes(8, "little")
    assert system.load(base + 64, 8) == (222).to_bytes(8, "little")


def test_recovery_replays_globally_committed():
    system = make_system()
    base = system.allocate(128)
    with system.transaction() as tx:
        tx.store_u64(base, 7)
        tx.store_u64(base + 64, 8)
    system.crash()
    report = system.recover(threads=2)
    assert report.committed_transactions == 1
    assert int.from_bytes(system.durable_state(base, 8), "little") == 7
    assert int.from_bytes(system.durable_state(base + 64, 8), "little") == 8


def test_prepared_but_uncommitted_discarded_everywhere():
    """A torn 2PC — slices durable, no commit entries — replays nothing."""
    system = make_system()
    base = system.allocate(128)
    doomed = system.transaction()
    doomed.__enter__()
    doomed.store_u64(base, 1)
    doomed.store_u64(base + 64, 2)
    system.crash()  # before Tx_end: prepare never completed
    report = system.recover()
    assert report.committed_transactions == 0
    assert system.durable_state(base, 8) == bytes(8)
    assert system.durable_state(base + 64, 8) == bytes(8)


def test_commit_entry_anywhere_replays_everywhere():
    """One surviving commit entry proves the global commit decision.

    The transaction committed (the ``with`` block returned control to
    the program), then controller 1's commit-log blocks are lost — the
    torn-page-rewrite failure mode.  2PC presumed-abort reasoning says
    controller 0's durable entry is proof of the global decision, so the
    victim must still replay its half of the write set via the
    STATE_LAST region scan.  Discarding the transaction here (the old
    intersection rule) would un-commit an acknowledged transaction.
    """
    system = make_system()
    scheme = system.scheme
    base = system.allocate(128)
    with system.transaction() as tx:
        tx.store_u64(base, 5)
        tx.store_u64(base + 64, 6)
    # Wipe controller 1's commit-log blocks so its entries vanish.
    victim = scheme.controllers[1]
    victim.region.rebuild_from_nvm()
    for block in range(victim.region.num_blocks):
        if victim.region.stream_of(block) == "addr":
            for slice_index in victim.region.iter_block_slices(block):
                system.device.poke(
                    victim.region.slice_addr(slice_index), bytes(128)
                )
    system.crash()
    report = system.recover()
    assert report.committed_transactions == 1
    assert int.from_bytes(system.durable_state(base, 8), "little") == 5
    assert int.from_bytes(system.durable_state(base + 64, 8), "little") == 6


def test_randomized_workload_with_crash():
    rng = random.Random(5150)
    system = make_system(controllers=2)
    addrs = [system.allocate(64) for _ in range(24)]
    oracle = {}
    for _ in range(150):
        with system.transaction(rng.randrange(4)) as tx:
            for _ in range(rng.randint(1, 6)):
                addr = rng.choice(addrs) + 8 * rng.randrange(8)
                value = rng.getrandbits(64).to_bytes(8, "little")
                tx.store(addr, value)
                oracle[addr] = value
    # Reads see everything before the crash.
    for addr, value in oracle.items():
        assert system.load(addr, 8) == value
    system.crash()
    system.recover(threads=2)
    for addr, value in oracle.items():
        assert system.durable_state(addr, 8) == value


def test_quiesce_migrates_all_controllers():
    system = make_system()
    base = system.allocate(128)
    with system.transaction() as tx:
        tx.store_u64(base, 1)
        tx.store_u64(base + 64, 2)
    system.scheme.quiesce(system.now_ns)
    assert int.from_bytes(system.durable_state(base, 8), "little") == 1
    assert int.from_bytes(
        system.durable_state(base + 64, 8), "little"
    ) == 2


def test_commit_latency_waits_for_slowest_participant():
    single = MemorySystem(SystemConfig.small(), scheme="hoop")
    multi = make_system()
    for system in (single, multi):
        base = system.allocate(128)
        with system.transaction() as tx:
            tx.store_u64(base, 1)
            tx.store_u64(base + 64, 2)
    # 2PC adds commit messages and per-controller entry flushes.
    assert multi.mean_latency_ns > single.mean_latency_ns
