"""Cache hierarchy: fills, evictions, persistent bits, crash."""

import pytest

from repro.common.config import CacheConfig, SystemConfig
from repro.common.errors import AddressError
from repro.common.units import KB
from repro.memhier.hierarchy import CacheHierarchy


class Harness:
    """A hierarchy wired to an in-memory backing store."""

    def __init__(self, config=None):
        self.config = config or SystemConfig.small()
        self.backing = {}
        self.fills = []
        self.evictions = []
        self.hierarchy = CacheHierarchy(
            self.config, self._fill, self._evict
        )

    def _fill(self, line_addr, now_ns):
        self.fills.append(line_addr)
        return self.backing.get(line_addr, bytes(64)), 50.0

    def _evict(self, line_addr, data, dirty, persistent, tx_id, now_ns):
        self.evictions.append((line_addr, dirty, persistent, tx_id))
        if dirty:
            self.backing[line_addr] = data


@pytest.fixture
def h():
    return Harness()


def test_store_then_load_round_trip(h):
    h.hierarchy.store(0, 128, b"payload!", 0.0)
    data, outcome = h.hierarchy.load(0, 128, 8, 1.0)
    assert data == b"payload!"
    assert outcome.hit_level == "L1"


def test_first_access_misses_to_memory(h):
    _, outcome = h.hierarchy.load(0, 0, 8, 0.0)
    assert outcome.hit_level == "MEM"
    assert outcome.llc_miss
    assert h.fills == [0]
    assert outcome.latency_ns > 50.0


def test_fill_latency_included(h):
    _, miss = h.hierarchy.load(0, 0, 8, 0.0)
    _, hit = h.hierarchy.load(0, 0, 8, 1.0)
    assert miss.latency_ns > hit.latency_ns


def test_l2_and_llc_hit_levels(h):
    cfg = h.config
    h.hierarchy.load(0, 0, 8, 0.0)
    # Evict from L1 by filling its sets with conflicting lines.
    l1_span = cfg.l1.num_sets * 64
    for i in range(1, cfg.l1.ways + 1):
        h.hierarchy.load(0, i * l1_span, 8, 0.0)
    _, outcome = h.hierarchy.load(0, 0, 8, 0.0)
    assert outcome.hit_level in ("L2", "LLC")


def test_other_core_hits_shared_llc(h):
    h.hierarchy.load(0, 0, 8, 0.0)
    _, outcome = h.hierarchy.load(1, 0, 8, 0.0)
    assert outcome.hit_level == "LLC"


def test_dirty_eviction_delivers_data(h):
    h.hierarchy.store(0, 0, b"A" * 64, 0.0)
    # Thrash the LLC until line 0 is evicted.
    llc_lines = h.config.llc.num_lines
    for i in range(1, llc_lines * 2):
        h.hierarchy.load(0, i * 64, 8, 0.0)
    assert any(addr == 0 and dirty for addr, dirty, _, _ in h.evictions)
    # The write-back reached the backing store.
    data, _ = h.hierarchy.load(0, 0, 8, 0.0)
    assert data == b"A" * 8


def test_persistent_bit_travels_with_eviction(h):
    h.hierarchy.store(0, 0, b"B" * 8, 0.0, persistent=True, tx_id=42)
    for i in range(1, h.config.llc.num_lines * 2):
        h.hierarchy.load(0, i * 64, 8, 0.0)
    match = [e for e in h.evictions if e[0] == 0]
    assert match and match[0][2] is True and match[0][3] == 42


def test_inclusive_back_invalidation(h):
    h.hierarchy.load(0, 0, 8, 0.0)  # in core 0's L1 and the LLC
    for i in range(1, h.config.llc.num_lines * 2):
        h.hierarchy.load(1, i * 64, 8, 0.0)  # thrash from core 1
    if not h.hierarchy.is_resident(0):
        # After the LLC eviction, core 0's L1 must not still hold it.
        _, outcome = h.hierarchy.load(0, 0, 8, 0.0)
        assert outcome.hit_level == "MEM"


def test_writeback_line_keeps_line_resident(h):
    h.hierarchy.store(0, 0, b"C" * 8, 0.0)
    assert h.hierarchy.writeback_line(0, 1.0)
    assert h.hierarchy.is_resident(0)
    assert not h.hierarchy.writeback_line(0, 2.0)  # now clean
    assert h.backing[0][:8] == b"C" * 8


def test_flush_line_invalidates(h):
    h.hierarchy.store(0, 0, b"D" * 8, 0.0)
    assert h.hierarchy.flush_line(0, 1.0)
    assert not h.hierarchy.is_resident(0)
    assert h.backing[0][:8] == b"D" * 8


def test_flush_clean_line_returns_false(h):
    h.hierarchy.load(0, 0, 8, 0.0)
    assert not h.hierarchy.flush_line(0, 1.0)


def test_dirty_lines_enumeration(h):
    h.hierarchy.store(0, 0, b"E" * 8, 0.0, persistent=True, tx_id=7)
    h.hierarchy.load(0, 64, 8, 0.0)
    dirty = h.hierarchy.dirty_lines()
    assert len(dirty) == 1
    line, data, flags = dirty[0]
    assert line == 0 and data[:8] == b"E" * 8 and flags.tx_id == 7


def test_crash_loses_everything(h):
    h.hierarchy.store(0, 0, b"F" * 8, 0.0)
    h.hierarchy.crash()
    assert not h.hierarchy.is_resident(0)
    data, outcome = h.hierarchy.load(0, 0, 8, 0.0)
    assert outcome.hit_level == "MEM"
    assert data == bytes(8)  # the dirty data never reached backing


def test_line_crossing_accesses_rejected(h):
    with pytest.raises(AddressError):
        h.hierarchy.load(0, 60, 8, 0.0)
    with pytest.raises(AddressError):
        h.hierarchy.store(0, 60, b"12345678", 0.0)
    with pytest.raises(AddressError):
        h.hierarchy.store(0, 0, b"", 0.0)


def test_bad_core_rejected(h):
    with pytest.raises(AddressError):
        h.hierarchy.load(99, 0, 8, 0.0)


def test_stats_track_miss_ratio(h):
    h.hierarchy.load(0, 0, 8, 0.0)
    h.hierarchy.load(0, 0, 8, 1.0)
    assert h.hierarchy.stats.llc_misses == 1
    assert 0 < h.hierarchy.stats.llc_miss_ratio <= 1.0


def test_fill_must_return_full_line():
    config = SystemConfig.small()
    bad = CacheHierarchy(config, lambda a, t: (b"short", 0.0),
                         lambda *args: None)
    with pytest.raises(AddressError):
        bad.load(0, 0, 8, 0.0)
