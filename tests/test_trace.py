"""Trace capture, serialization, and cross-scheme replay."""

import random

import pytest

from repro import MemorySystem, SystemConfig
from repro.trace import RecordingSystem, Trace, TraceOp, replay
from repro.trace.replay import ReplayError
from repro.trace.trace import TraceFormatError
from repro.workloads import WorkloadDriver, make_workload


def record_hashmap(transactions=60):
    system = RecordingSystem(SystemConfig.small(), scheme="native")
    system.pause_recording()  # constructor + load phase excluded
    workload = make_workload(
        "hashmap", system, seed=17, keyspace=512, buckets=128
    )
    workload.setup(core=0)
    system.resume_recording()
    driver = WorkloadDriver(system, threads=4, seed=17)
    driver.run(workload, transactions, setup=False, warmup=0, quiesce=False)
    return system


class TestFormat:
    def test_round_trip(self):
        trace = Trace(
            [
                TraceOp("B", 0),
                TraceOp("S", 0, addr=0x1000, data=b"\xde\xad"),
                TraceOp("L", 0, addr=0x1000, size=2),
                TraceOp("E", 0),
            ]
        )
        assert Trace.loads(trace.dumps()).ops == trace.ops

    def test_header_required(self):
        with pytest.raises(TraceFormatError):
            Trace.loads("B 0\n")

    def test_comments_and_blank_lines_skipped(self):
        text = "# hoop-trace v1\n\n# comment\nB 0\nE 0\n"
        assert len(Trace.loads(text)) == 2

    def test_bad_lines_rejected(self):
        for line in ("X 0", "S 0", "L 0 zz 8", "S 0 10 nothex!"):
            with pytest.raises(TraceFormatError):
                TraceOp.parse(line)

    def test_op_validation(self):
        with pytest.raises(TraceFormatError):
            TraceOp("S", 0, addr=1)  # no data
        with pytest.raises(TraceFormatError):
            TraceOp("L", 0, addr=1, size=0)

    def test_validate_nesting(self):
        bad = Trace([TraceOp("S", 0, addr=0, data=b"x")])
        with pytest.raises(TraceFormatError):
            bad.validate()
        bad = Trace([TraceOp("B", 0), TraceOp("B", 0)])
        with pytest.raises(TraceFormatError):
            bad.validate()

    def test_summary_accessors(self):
        system = record_hashmap(20)
        trace = system.trace
        assert trace.transactions == 20
        assert trace.stores > 0
        assert set(trace.cores()) <= {0, 1, 2, 3}


class TestRecording:
    def test_pause_excludes_load_phase(self):
        system = record_hashmap(10)
        # Setup inserts were paused out: only 10 transactions captured.
        assert system.trace.transactions == 10

    def test_recorded_system_behaves_normally(self):
        system = RecordingSystem(SystemConfig.small(), scheme="hoop")
        addr = system.allocate(8)
        with system.transaction() as tx:
            tx.store_u64(addr, 99)
        system.crash()
        system.recover()
        assert int.from_bytes(system.durable_state(addr, 8), "little") == 99


class TestReplay:
    def test_replay_reproduces_committed_state(self):
        recorded = record_hashmap(50)
        trace = recorded.trace
        target = MemorySystem(SystemConfig.small(), scheme="hoop")
        # Pre-size the heap identically (same allocator base).
        result = replay(trace, target)
        assert result.transactions == 50
        assert result.stores == trace.stores
        # Every store in the trace is durably visible on the target after
        # quiesce, matching the recording system's cache-level content.
        for op in trace:
            if op.kind == "S":
                assert target.durable_state(op.addr, len(op.data)) == op.data \
                    or True  # overwritten later in the trace
        # Stronger check: final value per address matches.
        final = {}
        for op in trace:
            if op.kind == "S":
                final[op.addr] = op.data
        for addr, data in final.items():
            assert target.durable_state(addr, len(data)) == data

    def test_same_trace_across_schemes_same_state(self):
        recorded = record_hashmap(40)
        trace = recorded.trace
        images = []
        final = {}
        for op in trace:
            if op.kind == "S":
                final[op.addr] = op.data
        for scheme in ("hoop", "opt-undo", "lsm"):
            target = MemorySystem(SystemConfig.small(), scheme=scheme)
            replay(trace, target)
            images.append(
                {a: target.durable_state(a, len(d)) for a, d in final.items()}
            )
        assert images[0] == images[1] == images[2]

    def test_replay_metrics(self):
        recorded = record_hashmap(30)
        target = MemorySystem(SystemConfig.small(), scheme="hoop")
        result = replay(recorded.trace, target)
        assert result.throughput_tx_per_ms > 0
        assert result.bytes_written > 0
        assert result.scheme == "hoop"

    def test_replay_rejects_too_many_cores(self):
        trace = Trace([TraceOp("B", 99), TraceOp("E", 99)])
        target = MemorySystem(SystemConfig.small(), scheme="native")
        with pytest.raises(ReplayError):
            replay(trace, target)

    def test_replay_rejects_dangling_transactions(self):
        trace = Trace([TraceOp("B", 0)])
        target = MemorySystem(SystemConfig.small(), scheme="native")
        with pytest.raises(ReplayError):
            replay(trace, target)

    def test_verify_loads_counts_mismatches(self):
        trace = Trace(
            [
                TraceOp("B", 0),
                TraceOp("S", 0, addr=4096, data=b"\x01" * 8),
                TraceOp("L", 0, addr=4096, size=8),
                TraceOp("E", 0),
            ]
        )
        target = MemorySystem(SystemConfig.small(), scheme="native")
        ok = replay(
            trace, target, verify_loads={4096: b"\x01" * 8},
            reset_measurement=False,
        )
        assert ok.load_mismatches == 0
        bad = replay(
            trace,
            MemorySystem(SystemConfig.small(), scheme="native"),
            verify_loads={4096: b"\xff" * 8},
            reset_measurement=False,
        )
        assert bad.load_mismatches == 1
