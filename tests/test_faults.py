"""The fault-injection layer: device-level semantics.

Covers the contract the crash sweep and the robustness features rely on:
deterministic power cuts and torn writes, transient-read retry with
backoff in the memory port, stuck-block remapping onto spare capacity,
and — critically — that a fault-free faulty device behaves exactly like
the plain device (the zero-perturbation guarantee's functional half).
"""

import pytest

from repro import FaultConfig, SystemConfig
from repro.common.errors import MediaError, PowerLossError
from repro.faults import FaultyNVMDevice, ReadRetryExhaustedError, make_device
from repro.memctrl.port import MemoryPort
from repro.nvm.device import NVMDevice


def test_make_device_plain_when_disabled():
    config = SystemConfig.small()
    device = make_device(config)
    assert type(device) is NVMDevice


def test_make_device_faulty_when_enabled():
    config = SystemConfig.small().replace(faults=FaultConfig(enabled=True))
    device = make_device(config)
    assert isinstance(device, FaultyNVMDevice)


def test_faultfree_faulty_device_matches_plain_content():
    plain = NVMDevice()
    faulty = FaultyNVMDevice(faults=FaultConfig(enabled=True, seed=3))
    for i in range(32):
        addr = 4096 + 64 * i
        data = bytes([i]) * 64
        plain.write(addr, data, 0.0)
        faulty.write(addr, data, 0.0)
    assert faulty.peek(4096, 64 * 32) == plain.peek(4096, 64 * 32)
    assert faulty.content_fingerprint() == plain.content_fingerprint()


class TestPowerLoss:
    def test_budget_counts_timed_writes(self):
        device = FaultyNVMDevice(
            faults=FaultConfig(enabled=True, power_loss_after_write=3)
        )
        for i in range(3):
            device.write(4096 + 64 * i, b"x" * 64, 0.0)
        with pytest.raises(PowerLossError):
            device.write(4096 + 192, b"y" * 64, 0.0)
        # The machine stays dead until power is restored.
        with pytest.raises(PowerLossError):
            device.write(4096, b"z" * 64, 0.0)
        assert device.fault_stats.power_cuts == 1
        assert device.fault_stats.writes_lost == 1
        device.restore_power()
        device.write(4096, b"z" * 64, 0.0)
        assert device.peek(4096, 1) == b"z"

    def test_clean_cut_drops_fatal_write_entirely(self):
        device = FaultyNVMDevice(
            faults=FaultConfig(
                enabled=True, power_loss_after_write=1, torn=False
            )
        )
        device.write(4096, b"a" * 64, 0.0)
        with pytest.raises(PowerLossError):
            device.write(8192, b"b" * 64, 0.0)
        assert device.peek(8192, 64) == bytes(64)

    def test_torn_cut_applies_seeded_word_subset(self):
        def run(seed):
            device = FaultyNVMDevice(
                faults=FaultConfig(
                    enabled=True, seed=seed,
                    power_loss_after_write=0, torn=True,
                )
            )
            with pytest.raises(PowerLossError):
                device.write(4096, bytes(range(64)), 0.0)
            return device.peek(4096, 64)

        torn = run(seed=1)
        assert torn == run(seed=1)  # deterministic for a fixed seed
        expect = bytes(range(64))
        words = [
            (torn[i : i + 8], expect[i : i + 8]) for i in range(0, 64, 8)
        ]
        # Every word is atomic: either fully applied or still zero.
        assert all(got in (want, bytes(8)) for got, want in words)

    def test_poke_budget_crashes_functional_plane(self):
        device = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        device.injector.arm_power_loss(after_pokes=2)
        device.poke(4096, b"a")
        device.poke(4097, b"b")
        with pytest.raises(PowerLossError):
            device.poke(4098, b"c")


class TestDeadlinePowerLoss:
    """arm_power_loss_at: a wall of simulated time instead of a budget."""

    def test_first_write_at_or_past_deadline_is_fatal(self):
        device = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        device.injector.arm_power_loss_at(1000.0)
        device.write(4096, b"a" * 64, 500.0)       # before the wall: fine
        with pytest.raises(PowerLossError):
            device.write(4160, b"b" * 64, 1000.0)  # at the wall: fatal
        assert device.fault_stats.power_cuts == 1
        # Dead until power is restored, which also clears the deadline.
        with pytest.raises(PowerLossError):
            device.write(4096, b"c" * 64, 2000.0)
        device.restore_power()
        device.write(4096, b"d" * 64, 3000.0)
        assert device.peek(4096, 1) == b"d"

    def test_negative_deadline_rejected(self):
        device = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        with pytest.raises(ValueError):
            device.injector.arm_power_loss_at(-1.0)

    def test_torn_flag_passes_through(self):
        device = FaultyNVMDevice(
            faults=FaultConfig(enabled=True, seed=9)
        )
        device.injector.arm_power_loss_at(100.0, torn=True)
        with pytest.raises(PowerLossError):
            device.write(4096, b"x" * 64, 150.0)
        # Torn cut: some seeded word subset of the dying write landed.
        landed = device.peek(4096, 64)
        assert landed != bytes(64) or device.fault_stats.writes_lost


class TestTransientReads:
    def test_port_retries_and_succeeds(self):
        faults = FaultConfig(
            enabled=True, seed=5, read_error_rate=0.4, max_read_retries=8
        )
        device = FaultyNVMDevice(faults=faults)
        device.write(4096, b"q" * 64, 0.0)
        port = MemoryPort(device)
        for _ in range(40):
            data, _ = port.read(4096, 64, 0.0)
            assert data == b"q" * 64
        assert device.fault_stats.transient_read_faults > 0
        assert port.stats.read_retries > 0
        assert port.stats.retry_wait_ns > 0.0
        assert port.stats.reads_failed == 0

    def test_retry_pushes_completion_out(self):
        faults = FaultConfig(
            enabled=True, seed=5, read_error_rate=0.4, max_read_retries=8
        )
        device = FaultyNVMDevice(faults=faults)
        device.write(4096, b"q" * 64, 0.0)
        port = MemoryPort(device)
        clean = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        clean.write(4096, b"q" * 64, 0.0)
        clean_port = MemoryPort(clean)
        worst = baseline = 0.0
        for _ in range(40):
            _, completion = port.read(4096, 64, 0.0)
            _, clean_completion = clean_port.read(4096, 64, 0.0)
            worst = max(worst, completion)
            baseline = max(baseline, clean_completion)
        assert worst > baseline  # backoff showed up in simulated time

    def test_media_error_after_retry_budget(self):
        # With the retry budget at zero, the first injected fault is
        # terminal; seed 5's first random draw is below the rate.
        faults = FaultConfig(
            enabled=True, seed=5, read_error_rate=0.9, max_read_retries=0
        )
        device = FaultyNVMDevice(faults=faults)
        device.write(4096, b"q" * 64, 0.0)
        port = MemoryPort(device)
        with pytest.raises(MediaError):
            for _ in range(10):
                port.read(4096, 64, 0.0)
        assert port.stats.reads_failed == 1


class TestRetryExhaustion:
    def test_exhaustion_error_carries_address_and_attempts(self):
        # Retry budget 2, rate ~1: the op burns its initial read plus
        # both retries, then surfaces a typed error naming the address.
        faults = FaultConfig(
            enabled=True, seed=5, read_error_rate=0.95, max_read_retries=2
        )
        device = FaultyNVMDevice(faults=faults)
        device.write(4096, b"q" * 64, 0.0)
        port = MemoryPort(device)
        with pytest.raises(ReadRetryExhaustedError) as info:
            for _ in range(50):
                port.read(4096, 64, 0.0)
        assert info.value.addr == 4096
        assert info.value.attempts == 3  # initial + max_read_retries
        # Subclass: existing MediaError handlers keep working.
        assert isinstance(info.value, MediaError)

    def test_retry_budget_is_per_operation_not_cumulative(self):
        # Many operations each fault a little; the *sum* of transient
        # faults far exceeds one op's budget, yet no read is abandoned
        # because each operation's attempt counter starts fresh.
        faults = FaultConfig(
            enabled=True, seed=5, read_error_rate=0.25, max_read_retries=6
        )
        device = FaultyNVMDevice(faults=faults)
        device.write(4096, b"q" * 64, 0.0)
        port = MemoryPort(device)
        for _ in range(200):
            data, _ = port.read(4096, 64, 0.0)
            assert data == b"q" * 64
        assert device.fault_stats.transient_read_faults > 6
        assert port.stats.reads_failed == 0
        assert 0 < port.stats.max_attempts_one_read <= 7


class TestNestedFaultArming:
    def test_recovery_budget_counts_both_mutation_planes(self):
        device = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        device.injector.arm_recovery_fault(after_ops=3)
        device.write(4096, b"a" * 64, 0.0)  # op 1: timed write
        device.poke(8192, b"b")  # op 2: functional poke
        device.write(4160, b"c" * 64, 0.0)  # op 3: timed write
        with pytest.raises(PowerLossError):
            device.poke(8200, b"d")  # op 4 is the cut instant
        assert device.fault_stats.recovery_ops == 3
        assert device.fault_stats.power_cuts == 1
        # Dead until power is restored, like any power cut.
        with pytest.raises(PowerLossError):
            device.write(4096, b"e" * 64, 0.0)
        device.restore_power()
        device.write(4096, b"e" * 64, 0.0)

    def test_zero_budget_cuts_the_next_op(self):
        device = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        device.injector.arm_recovery_fault(after_ops=0)
        with pytest.raises(PowerLossError):
            device.poke(4096, b"x")

    def test_rearm_cannot_silently_disarm_pending_nested_fault(self):
        device = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        device.injector.arm_recovery_fault(after_ops=5)
        with pytest.raises(AssertionError):
            device.rearm(FaultConfig(enabled=True))
        # Explicitly disarming first makes rearm legal again.
        device.restore_power()
        device.rearm(FaultConfig(enabled=True))
        device.write(4096, b"x" * 64, 0.0)

    def test_rearm_tripwire_covers_zero_residual_budget(self):
        # A zero budget is still pending (it fires on the *next* op) —
        # the invariant must not treat it as already spent.
        device = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        device.injector.arm_recovery_fault(after_ops=0)
        with pytest.raises(AssertionError):
            device.rearm(FaultConfig(enabled=True))

    def test_rearm_legal_after_nested_fault_fired(self):
        device = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        device.injector.arm_recovery_fault(after_ops=0)
        with pytest.raises(PowerLossError):
            device.poke(4096, b"x")
        # Fired: the pending flag clears with the power loss.
        device.rearm(FaultConfig(enabled=True))
        device.write(4096, b"x" * 64, 0.0)


class TestStuckBlocks:
    def test_write_to_stuck_block_is_remapped(self):
        faults = FaultConfig(
            enabled=True, stuck_blocks=(0,), fault_block_bytes=2**20
        )
        device = FaultyNVMDevice(faults=faults)
        device.write(4096, b"r" * 64, 0.0)
        stats = device.fault_stats
        assert stats.remapped_blocks == 1
        assert stats.stuck_block_writes == 1
        # The data is readable through the remap, on both planes.
        assert device.peek(4096, 64) == b"r" * 64
        data, _ = device.read(4096, 64, 0.0)
        assert data == b"r" * 64
        assert stats.remapped_accesses > 0

    def test_remap_copies_prior_content(self):
        faults = FaultConfig(enabled=True, fault_block_bytes=2**20)
        device = FaultyNVMDevice(faults=faults)
        # Content lands on the healthy block, *then* the block goes bad
        # (wear-out): the remap triggered by the next write must migrate
        # the earlier bytes to the spare.
        device.poke(0, b"old" + bytes(61))
        device._stuck = {0}
        device.write(4096, b"new" + bytes(61), 0.0)
        assert device.peek(0, 3) == b"old"
        assert device.peek(4096, 3) == b"new"
        assert device.fault_stats.remap_copy_bytes > 0

    def test_spare_exhaustion_is_a_media_error(self):
        faults = FaultConfig(
            enabled=True,
            stuck_blocks=(0, 1),
            spare_blocks=1,
            fault_block_bytes=2**20,
        )
        device = FaultyNVMDevice(faults=faults)
        device.write(4096, b"a" * 64, 0.0)  # consumes the only spare
        with pytest.raises(MediaError):
            device.write(2**20 + 4096, b"b" * 64, 0.0)

    def test_remap_charges_latency_penalty(self):
        faults = FaultConfig(
            enabled=True, stuck_blocks=(0,), fault_block_bytes=2**20,
            remap_penalty_ns=5000.0,
        )
        device = FaultyNVMDevice(faults=faults)
        result = device.write(4096, b"x" * 64, 0.0, queued=False)
        clean = FaultyNVMDevice(faults=FaultConfig(enabled=True))
        baseline = clean.write(4096, b"x" * 64, 0.0, queued=False)
        assert result.completion_ns >= baseline.completion_ns + 5000.0

    def test_remap_survives_power_cycle(self):
        faults = FaultConfig(
            enabled=True, stuck_blocks=(0,), fault_block_bytes=2**20,
            power_loss_after_write=1,
        )
        device = FaultyNVMDevice(faults=faults)
        device.write(4096, b"s" * 64, 0.0)  # triggers the remap
        with pytest.raises(PowerLossError):
            device.write(8192, b"t" * 64, 0.0)
        device.restore_power()
        # The firmware remap table is persistent: the address still
        # translates, the content is still there.
        assert device.peek(4096, 64) == b"s" * 64
        device.write(4096, b"u" * 64, 0.0)
        assert device.peek(4096, 64) == b"u" * 64


class TestFaultReport:
    def test_counters_surface_in_figure(self):
        from repro import MemorySystem
        from repro.stats import fault_tolerance_figure

        config = SystemConfig.small().replace(
            faults=FaultConfig(enabled=True, seed=5, read_error_rate=0.2)
        )
        system = MemorySystem(config, scheme="hoop")
        addr = system.allocate(64)
        with system.transaction() as tx:
            tx.store(addr, b"z" * 64)
        fig = fault_tolerance_figure(system)
        counters = fig.by_key("Counter")
        assert "power cuts" in counters
        assert "read retries" in counters
        assert fig.render()

    def test_plain_device_reports_port_rows_only(self):
        from repro import MemorySystem
        from repro.stats import fault_tolerance_figure

        system = MemorySystem(SystemConfig.small(), scheme="hoop")
        fig = fault_tolerance_figure(system)
        counters = fig.by_key("Counter")
        assert "power cuts" not in counters
        assert "read retries" in counters
        assert fig.notes


class TestEndToEnd:
    def test_system_survives_power_loss_and_recovers(self):
        from repro import MemorySystem

        config = SystemConfig.small().replace(
            faults=FaultConfig(enabled=True, seed=2, power_loss_after_write=40)
        )
        system = MemorySystem(config, scheme="hoop")
        addr = system.allocate(64)
        committed = attempted = None
        with pytest.raises(PowerLossError):
            for i in range(500):
                attempted = i.to_bytes(8, "little")
                with system.transaction() as tx:
                    tx.store(addr, attempted)
                committed = attempted
        system.crash()
        system.recover(threads=2)
        # Atomic durability: the last committed value, or the in-flight
        # one if its commit had passed the durability point.
        assert system.durable_state(addr, 8) in (committed, attempted)
