"""The skip list behind the LSM baseline's address index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes.skiplist import SkipList


def test_insert_lookup():
    sl = SkipList()
    sl.insert(5, "five")
    value, hops = sl.lookup(5)
    assert value == "five"
    assert hops > 0


def test_lookup_missing():
    sl = SkipList()
    sl.insert(5, "five")
    value, _ = sl.lookup(6)
    assert value is None


def test_insert_replaces():
    sl = SkipList()
    sl.insert(1, "a")
    sl.insert(1, "b")
    assert len(sl) == 1
    assert sl.lookup(1)[0] == "b"


def test_iteration_sorted():
    sl = SkipList()
    for key in (5, 1, 9, 3):
        sl.insert(key, key * 10)
    assert list(sl.keys()) == [1, 3, 5, 9]
    assert list(sl) == [(1, 10), (3, 30), (5, 50), (9, 90)]


def test_floor():
    sl = SkipList()
    for key in (10, 20, 30):
        sl.insert(key, str(key))
    assert sl.floor(25)[:2] == (20, "20")
    assert sl.floor(30)[:2] == (30, "30")
    assert sl.floor(5)[:2] == (None, None)


def test_remove():
    sl = SkipList()
    sl.insert(1, "a")
    sl.insert(2, "b")
    found, _ = sl.remove(1)
    assert found
    assert sl.lookup(1)[0] is None
    assert len(sl) == 1
    found, _ = sl.remove(99)
    assert not found


def test_range_items():
    sl = SkipList()
    for key in range(0, 100, 8):
        sl.insert(key, key)
    items, hops = sl.range_items(16, 48)
    assert [k for k, _ in items] == [16, 24, 32, 40]
    assert hops > 0


def test_range_items_empty_range():
    sl = SkipList()
    sl.insert(100, "x")
    items, _ = sl.range_items(0, 50)
    assert items == []


def test_hops_grow_sublinearly():
    small = SkipList(seed=1)
    large = SkipList(seed=1)
    for i in range(64):
        small.insert(i, i)
    for i in range(4096):
        large.insert(i, i)
    small.hops = large.hops = 0
    for key in range(0, 64, 7):
        small.lookup(key)
        large.lookup(key)
    # 64x more entries must cost far less than 64x the hops (O(log n)).
    assert large.hops < small.hops * 8


def test_determinism():
    a = SkipList(seed=42)
    b = SkipList(seed=42)
    for i in range(200):
        a.insert(i * 7 % 101, i)
        b.insert(i * 7 % 101, i)
    assert a.hops == b.hops
    assert list(a) == list(b)


def test_clear():
    sl = SkipList()
    sl.insert(1, "a")
    sl.clear()
    assert len(sl) == 0
    assert sl.lookup(1)[0] is None


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "lookup"]),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=200,
    )
)
def test_matches_dict_model(ops):
    sl = SkipList(seed=7)
    model = {}
    for op, key in ops:
        if op == "insert":
            sl.insert(key, key * 2)
            model[key] = key * 2
        elif op == "remove":
            found, _ = sl.remove(key)
            assert found == (key in model)
            model.pop(key, None)
        else:
            value, _ = sl.lookup(key)
            assert value == model.get(key)
    assert list(sl) == sorted(model.items())
    assert len(sl) == len(model)
