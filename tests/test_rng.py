"""Deterministic RNG utilities."""

import pytest

from repro.common import rng as rng_util


def test_make_rng_deterministic():
    a = rng_util.make_rng(42)
    b = rng_util.make_rng(42)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_derive_is_stable():
    assert rng_util.derive(1, "x", 2) == rng_util.derive(1, "x", 2)


def test_derive_varies_with_labels():
    seeds = {
        rng_util.derive(1, "x", 2),
        rng_util.derive(1, "x", 3),
        rng_util.derive(1, "y", 2),
        rng_util.derive(2, "x", 2),
    }
    assert len(seeds) == 4


def test_derive_streams_uncorrelated():
    a = rng_util.make_rng(rng_util.derive(7, "thread", 0))
    b = rng_util.make_rng(rng_util.derive(7, "thread", 1))
    draws_a = [a.randrange(100) for _ in range(50)]
    draws_b = [b.randrange(100) for _ in range(50)]
    assert draws_a != draws_b


def test_random_bytes():
    rng = rng_util.make_rng(3)
    data = rng_util.random_bytes(rng, 32)
    assert len(data) == 32
    assert rng_util.random_bytes(rng_util.make_rng(3), 32) == data
    assert rng_util.random_bytes(rng, 0) == b""
    with pytest.raises(ValueError):
        rng_util.random_bytes(rng, -1)
