"""Persistent data structures: functional correctness and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MemorySystem, SystemConfig
from repro.common.errors import CapacityError
from repro.workloads.structures import (
    PersistentBTree,
    PersistentHashMap,
    PersistentQueue,
    PersistentRBTree,
    PersistentVector,
)


def make_system():
    return MemorySystem(SystemConfig.small(), scheme="native")


class TestVector:
    def test_insert_and_get(self):
        system = make_system()
        vec = PersistentVector(system, capacity=8, item_bytes=16)
        with system.transaction() as tx:
            index = vec.insert(tx, b"0123456789abcdef")
            assert index == 0
            assert vec.length(tx) == 1
            assert vec.get(tx, 0) == b"0123456789abcdef"

    def test_update_in_place(self):
        system = make_system()
        vec = PersistentVector(system, capacity=8, item_bytes=16)
        with system.transaction() as tx:
            vec.insert(tx, b"a" * 16)
            vec.update(tx, 0, b"b" * 16)
            assert vec.get(tx, 0) == b"b" * 16

    def test_capacity_enforced(self):
        system = make_system()
        vec = PersistentVector(system, capacity=1, item_bytes=16)
        with system.transaction() as tx:
            vec.insert(tx, b"x" * 16)
            with pytest.raises(CapacityError):
                vec.insert(tx, b"y" * 16)

    def test_bad_item_size_rejected(self):
        system = make_system()
        vec = PersistentVector(system, capacity=2, item_bytes=16)
        with system.transaction() as tx:
            with pytest.raises(ValueError):
                vec.insert(tx, b"short")

    def test_out_of_range_rejected(self):
        system = make_system()
        vec = PersistentVector(system, capacity=2, item_bytes=16)
        with system.transaction() as tx:
            with pytest.raises(IndexError):
                vec.get(tx, 5)


class TestHashMap:
    def test_insert_get_update_remove(self):
        system = make_system()
        hmap = PersistentHashMap(system, buckets=16, value_bytes=16)
        with system.transaction() as tx:
            hmap.insert(tx, 1, b"v" * 16)
            assert hmap.get(tx, 1) == b"v" * 16
            assert hmap.update(tx, 1, b"w" * 16)
            assert hmap.get(tx, 1) == b"w" * 16
            assert hmap.remove(tx, 1)
            assert hmap.get(tx, 1) is None
            assert not hmap.remove(tx, 1)

    def test_missing_key(self):
        system = make_system()
        hmap = PersistentHashMap(system, buckets=16, value_bytes=16)
        with system.transaction() as tx:
            assert hmap.get(tx, 42) is None
            assert not hmap.update(tx, 42, b"z" * 16)

    def test_chains_survive_collisions(self):
        system = make_system()
        hmap = PersistentHashMap(system, buckets=1, value_bytes=8)
        with system.transaction() as tx:
            for key in range(20):
                hmap.insert(tx, key, key.to_bytes(8, "little"))
            for key in range(20):
                assert hmap.get(tx, key) == key.to_bytes(8, "little")

    def test_insert_overwrites(self):
        system = make_system()
        hmap = PersistentHashMap(system, buckets=4, value_bytes=8)
        with system.transaction() as tx:
            hmap.insert(tx, 1, b"a" * 8)
            hmap.insert(tx, 1, b"b" * 8)
            assert hmap.get(tx, 1) == b"b" * 8

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "remove", "get"]),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=60,
        )
    )
    def test_matches_dict_model(self, ops):
        system = make_system()
        hmap = PersistentHashMap(system, buckets=4, value_bytes=8)
        model = {}
        with system.transaction() as tx:
            for op, key in ops:
                value = (key * 7 % 251).to_bytes(8, "little")
                if op == "insert":
                    hmap.insert(tx, key, value)
                    model[key] = value
                elif op == "remove":
                    assert hmap.remove(tx, key) == (key in model)
                    model.pop(key, None)
                else:
                    assert hmap.get(tx, key) == model.get(key)


class TestQueue:
    def test_fifo_order(self):
        system = make_system()
        queue = PersistentQueue(system, value_bytes=8)
        with system.transaction() as tx:
            for i in range(5):
                queue.enqueue(tx, i.to_bytes(8, "little"))
            for i in range(5):
                assert queue.dequeue(tx) == i.to_bytes(8, "little")
            assert queue.dequeue(tx) is None

    def test_peek(self):
        system = make_system()
        queue = PersistentQueue(system, value_bytes=8)
        with system.transaction() as tx:
            assert queue.peek(tx) is None
            queue.enqueue(tx, b"front!!!")
            queue.enqueue(tx, b"back!!!!")
            assert queue.peek(tx) == b"front!!!"

    def test_count_tracking(self):
        system = make_system()
        queue = PersistentQueue(system, value_bytes=8)
        with system.transaction() as tx:
            queue.enqueue(tx, b"12345678")
            assert queue.update_count(tx, +1) == 1
            queue.dequeue(tx)
            assert queue.update_count(tx, -1) == 0

    def test_interleaved_operations(self):
        system = make_system()
        queue = PersistentQueue(system, value_bytes=8)
        import collections

        model = collections.deque()
        with system.transaction() as tx:
            for i in range(40):
                if i % 3 != 2:
                    value = i.to_bytes(8, "little")
                    queue.enqueue(tx, value)
                    model.append(value)
                else:
                    got = queue.dequeue(tx)
                    expected = model.popleft() if model else None
                    assert got == expected


class TestRBTree:
    def test_insert_search_update(self):
        system = make_system()
        tree = PersistentRBTree(system)
        with system.transaction() as tx:
            tree.insert(tx, 10, 100)
            tree.insert(tx, 5, 50)
            tree.insert(tx, 15, 150)
            assert tree.search(tx, 5) == 50
            assert tree.search(tx, 99) is None
            assert tree.update(tx, 5, 55)
            assert tree.search(tx, 5) == 55
            assert not tree.update(tx, 99, 1)

    def test_sorted_iteration(self):
        system = make_system()
        tree = PersistentRBTree(system)
        keys = [5, 1, 9, 3, 7, 2, 8]
        with system.transaction() as tx:
            for key in keys:
                tree.insert(tx, key, key)
        assert tree.keys_in_order() == sorted(keys)

    def test_invariants_random_inserts(self):
        import random

        system = make_system()
        tree = PersistentRBTree(system)
        rng = random.Random(5)
        inserted = set()
        for _ in range(150):
            key = rng.randrange(10_000)
            with system.transaction() as tx:
                tree.insert(tx, key, key)
            inserted.add(key)
        count, _ = tree.check_invariants()
        assert count == len(inserted)
        assert tree.keys_in_order() == sorted(inserted)

    def test_invariants_sequential_inserts(self):
        system = make_system()
        tree = PersistentRBTree(system)
        for key in range(100):
            with system.transaction() as tx:
                tree.insert(tx, key, key)
        count, black_height = tree.check_invariants()
        assert count == 100
        assert black_height >= 3  # balanced, not a list

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=80))
    def test_matches_dict_model(self, keys):
        system = make_system()
        tree = PersistentRBTree(system)
        model = {}
        with system.transaction() as tx:
            for key in keys:
                tree.insert(tx, key, key * 2)
                model[key] = key * 2
            for key in model:
                assert tree.search(tx, key) == model[key]
        tree.check_invariants()
        assert tree.keys_in_order() == sorted(model)

    def test_delete_simple(self):
        system = make_system()
        tree = PersistentRBTree(system)
        with system.transaction() as tx:
            for key in (5, 3, 8, 1, 4):
                tree.insert(tx, key, key)
            assert tree.delete(tx, 3)
            assert tree.search(tx, 3) is None
            assert not tree.delete(tx, 3)
            assert tree.search(tx, 4) == 4
        tree.check_invariants()
        assert tree.keys_in_order() == [1, 4, 5, 8]

    def test_delete_root_chain(self):
        system = make_system()
        tree = PersistentRBTree(system)
        keys = list(range(40))
        with system.transaction() as tx:
            for key in keys:
                tree.insert(tx, key, key)
            for key in keys:
                assert tree.delete(tx, key)
        tree.check_invariants()
        assert tree.keys_in_order() == []

    def test_delete_frees_nodes(self):
        system = make_system()
        tree = PersistentRBTree(system)
        with system.transaction() as tx:
            tree.insert(tx, 1, 1)
        frees_before = system.heap.frees
        with system.transaction() as tx:
            tree.delete(tx, 1)
        assert system.heap.frees == frees_before + 1

    @settings(max_examples=12, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=0, max_value=120),
            ),
            max_size=150,
        )
    )
    def test_insert_delete_matches_dict_model(self, ops):
        system = make_system()
        tree = PersistentRBTree(system)
        model = {}
        with system.transaction() as tx:
            for op, key in ops:
                if op == "insert":
                    tree.insert(tx, key, key * 3)
                    model[key] = key * 3
                else:
                    assert tree.delete(tx, key) == (key in model)
                    model.pop(key, None)
        tree.check_invariants()
        assert tree.keys_in_order() == sorted(model)


class TestBTree:
    def test_insert_search_update(self):
        system = make_system()
        tree = PersistentBTree(system, t=2)
        with system.transaction() as tx:
            for key in (10, 5, 15, 3, 7):
                tree.insert(tx, key, key * 10)
            assert tree.search(tx, 7) == 70
            assert tree.search(tx, 99) is None
            assert tree.update(tx, 7, 77)
            assert tree.search(tx, 7) == 77
            assert not tree.update(tx, 99, 0)

    def test_splits_preserve_order(self):
        system = make_system()
        tree = PersistentBTree(system, t=2)
        keys = list(range(50))
        with system.transaction() as tx:
            for key in keys:
                tree.insert(tx, key, key)
        assert tree.keys_in_order() == keys
        assert tree.check_invariants() == 50

    def test_duplicate_insert_overwrites(self):
        system = make_system()
        tree = PersistentBTree(system, t=2)
        with system.transaction() as tx:
            tree.insert(tx, 1, 10)
            tree.insert(tx, 1, 20)
            assert tree.search(tx, 1) == 20
        assert tree.check_invariants() == 1

    def test_min_degree_validation(self):
        system = make_system()
        with pytest.raises(ValueError):
            PersistentBTree(system, t=1)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), max_size=120),
        st.integers(min_value=2, max_value=5),
    )
    def test_matches_dict_model(self, keys, degree):
        system = make_system()
        tree = PersistentBTree(system, t=degree)
        model = {}
        with system.transaction() as tx:
            for key in keys:
                tree.insert(tx, key, key + 1)
                model[key] = key + 1
            for key in model:
                assert tree.search(tx, key) == model[key]
        assert tree.check_invariants() == len(model)
        assert tree.keys_in_order() == sorted(model)
