"""The serving layer: routing, admission, batching, failover, oracle."""

import json

import pytest

from repro.common import rng as rng_util
from repro.common.errors import ConfigError
from repro.serve import SERVABLE_SCHEMES, ServeConfig, ServeReport, run_serve
from repro.serve.admission import (
    AdmissionController,
    FailoverRejection,
    QueueFullRejection,
    RetryableRejection,
    ShardRecoveringRejection,
)
from repro.serve.batcher import BatchScheduler
from repro.serve.client import OP_GET, OP_PUT, OpenLoopClient, make_clients
from repro.serve.router import ConsistentHashRouter, stable_hash


def tiny_cfg(**overrides):
    base = dict(
        shards=2,
        clients=3,
        rate_per_s=30_000.0,
        duration_ms=4.0,
        keyspace=512,
        seed=13,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestRouter:
    def test_stable_hash_is_process_stable(self):
        # A fixed expectation pins the function across runs/processes —
        # Python's salted hash() would fail this (that is the point).
        assert stable_hash(0, "shard", 1, 2) == stable_hash(0, "shard", 1, 2)
        a = ConsistentHashRouter([0, 1, 2], seed=5)
        b = ConsistentHashRouter([0, 1, 2], seed=5)
        assert [a.shard_for(k) for k in range(500)] == [
            b.shard_for(k) for k in range(500)
        ]

    def test_reasonable_balance(self):
        router = ConsistentHashRouter(list(range(4)), seed=1)
        counts = {s: 0 for s in range(4)}
        for key in range(8000):
            counts[router.shard_for(key)] += 1
        for count in counts.values():
            assert 0.5 * 2000 < count < 2.0 * 2000

    def test_minimal_remap_on_shard_add(self):
        before = ConsistentHashRouter(list(range(4)), seed=2)
        after = ConsistentHashRouter(list(range(5)), seed=2)
        keys = range(4000)
        moved = sum(
            1 for k in keys if before.shard_for(k) != after.shard_for(k)
        )
        # Consistent hashing moves ~1/5 of keys to the new shard; a
        # modulo router would move ~4/5.
        assert moved / 4000 < 0.40

    def test_partition_covers_keyspace_exactly(self):
        router = ConsistentHashRouter([0, 1, 2], seed=3)
        partition = router.partition(300)
        seen = sorted(k for keys in partition.values() for k in keys)
        assert seen == list(range(300))
        for shard, keys in partition.items():
            assert all(router.shard_for(k) == shard for k in keys)


class TestAdmission:
    def _request(self, shard, seq=0):
        from repro.serve.client import Request

        return Request(
            key=seq, op=OP_PUT, value=b"x" * 8, client=0, seq=seq,
            arrival_ns=float(seq), shard=shard,
        )

    def test_bounded_queue_and_typed_rejections(self):
        ctl = AdmissionController([0], queue_depth=2)
        ctl.admit(self._request(0, 0), recovering=False, retry_after_ns=5.0)
        ctl.admit(self._request(0, 1), recovering=False, retry_after_ns=5.0)
        with pytest.raises(QueueFullRejection) as info:
            ctl.admit(self._request(0, 2), recovering=False,
                      retry_after_ns=7.0)
        assert isinstance(info.value, RetryableRejection)
        assert info.value.retry_after_ns == 7.0
        assert info.value.shard == 0
        with pytest.raises(ShardRecoveringRejection):
            ctl.admit(self._request(0, 3), recovering=True,
                      retry_after_ns=9.0)
        assert ctl.rejections == {"queue_full": 1, "shard_recovering": 1}
        assert ctl.depth(0) == 2

    def test_failing_over_rejection_is_typed_and_wins(self):
        ctl = AdmissionController([0], queue_depth=1)
        ctl.admit(self._request(0, 0), recovering=False, retry_after_ns=1.0)
        with pytest.raises(FailoverRejection) as info:
            ctl.admit(self._request(0, 1), recovering=True,
                      retry_after_ns=4.0, failing_over=True)
        assert isinstance(info.value, RetryableRejection)
        assert info.value.retry_after_ns == 4.0
        assert ctl.rejections == {"failing_over": 1}

    def test_recovering_shard_still_queues_when_room(self):
        ctl = AdmissionController([0], queue_depth=4)
        ctl.admit(self._request(0), recovering=True, retry_after_ns=1.0)
        assert ctl.depth(0) == 1

    def test_requeue_front_restores_fifo_order(self):
        ctl = AdmissionController([0], queue_depth=8)
        batch = [self._request(0, i) for i in range(3)]
        ctl.admit(self._request(0, 9), recovering=False, retry_after_ns=0.0)
        fitted = ctl.requeue_front(batch)
        assert fitted == 3
        assert [r.seq for r in ctl.queues[0]] == [0, 1, 2, 9]
        assert all(r.retries == 1 for r in batch)

    def test_requeue_front_never_overflows(self):
        ctl = AdmissionController([0], queue_depth=2)
        ctl.admit(self._request(0, 9), recovering=False, retry_after_ns=0.0)
        fitted = ctl.requeue_front([self._request(0, i) for i in range(3)])
        assert fitted == 1
        assert ctl.depth(0) == 2


class TestBatcher:
    def _queue(self, arrivals):
        from collections import deque

        from repro.serve.client import Request

        return deque(
            Request(key=i, op=OP_PUT, value=b"x" * 8, client=0, seq=i,
                    arrival_ns=t, shard=0)
            for i, t in enumerate(arrivals)
        )

    def test_full_batch_fires_immediately(self):
        sched = BatchScheduler(batch_size=3, batch_wait_ns=1e6)
        queue = self._queue([10.0, 11.0, 12.0])
        assert sched.ready(queue, now_ns=12.0)

    def test_partial_batch_waits_for_head_deadline(self):
        sched = BatchScheduler(batch_size=8, batch_wait_ns=100.0)
        queue = self._queue([10.0, 50.0])
        assert not sched.ready(queue, now_ns=90.0)
        assert sched.deadline_ns(queue) == 110.0
        assert sched.ready(queue, now_ns=110.0)

    def test_take_is_fifo_and_bounded(self):
        sched = BatchScheduler(batch_size=2, batch_wait_ns=0.0)
        queue = self._queue([1.0, 2.0, 3.0])
        batch = sched.take(queue)
        assert [r.seq for r in batch] == [0, 1]
        assert len(queue) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(batch_size=0, batch_wait_ns=1.0)
        with pytest.raises(ValueError):
            BatchScheduler(batch_size=1, batch_wait_ns=-1.0)


class TestClients:
    def test_replay_is_bit_identical(self):
        def trace():
            client = OpenLoopClient(
                3, rate_per_s=50_000, duration_ns=2e6, keyspace=256,
                value_bytes=16, read_fraction=0.3, seed=21,
            )
            return [
                (r.key, r.op, r.value, r.arrival_ns) for r in client
            ]

        assert trace() == trace()

    def test_clients_draw_independent_streams(self):
        clients = make_clients(
            4, aggregate_rate_per_s=80_000, duration_ns=2e6,
            keyspace=256, value_bytes=16, read_fraction=0.0,
            zipf_theta=0.9, seed=5,
        )
        traces = {
            cid: tuple(r.arrival_ns for r in client)
            for cid, client in clients.items()
        }
        # No two clients share an arrival timeline (per-client derived
        # seeds), yet each is reproducible from (seed, client_id) alone.
        values = list(traces.values())
        assert len(set(values)) == len(values)
        solo = OpenLoopClient(
            2, rate_per_s=20_000, duration_ns=2e6, keyspace=256,
            value_bytes=16, seed=5,
        )
        assert tuple(r.arrival_ns for r in solo) == traces[2]

    def test_arrivals_monotone_and_bounded(self):
        client = OpenLoopClient(
            0, rate_per_s=100_000, duration_ns=1e6, keyspace=64,
            value_bytes=8, seed=1,
        )
        times = [r.arrival_ns for r in client]
        assert times == sorted(times)
        assert all(0 < t <= 1e6 for t in times)
        assert client.next_request() is None  # stays exhausted

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoopClient(0, rate_per_s=0, duration_ns=1e6,
                           keyspace=8, value_bytes=8)
        with pytest.raises(ValueError):
            make_clients(0, aggregate_rate_per_s=1e3, duration_ns=1e6,
                         keyspace=8, value_bytes=8, read_fraction=0.0,
                         zipf_theta=0.9, seed=0)


class TestConfig:
    def test_rejects_native(self):
        with pytest.raises(ConfigError):
            tiny_cfg(scheme="native")

    def test_rejects_unaligned_values(self):
        with pytest.raises(ConfigError):
            tiny_cfg(value_bytes=12)

    def test_rejects_out_of_range_kill_shard(self):
        with pytest.raises(ConfigError):
            tiny_cfg(kill_shard=2)

    def test_replace_revalidates(self):
        cfg = tiny_cfg()
        with pytest.raises(ConfigError):
            cfg.replace(shards=0)


class TestEndToEnd:
    def test_run_is_deterministic(self):
        cfg = tiny_cfg()
        a = run_serve(cfg).to_dict()
        b = run_serve(cfg).to_dict()
        assert a == b
        json.dumps(a)  # report must be JSON-serializable

    def test_clean_run_acks_everything_offered(self):
        report = run_serve(tiny_cfg(read_fraction=0.2))
        assert report.offered > 0
        assert report.admitted == report.offered  # modest load, no kills
        assert report.acked_puts + report.acked_gets == report.admitted
        assert report.clean
        assert report.oracle_verifications == 2  # final sweep per shard
        assert report.latency["count"] == report.admitted
        assert report.makespan_ns > 0
        assert report.requests_per_s > 0

    def test_batching_amortizes_commits(self):
        report = run_serve(tiny_cfg(read_fraction=0.0, batch_size=8))
        assert report.batches < report.acked_puts
        assert report.committed_transactions == report.batches

    @pytest.mark.parametrize("scheme", sorted(SERVABLE_SCHEMES))
    def test_failover_loses_no_acked_write(self, scheme):
        report = run_serve(
            tiny_cfg(scheme=scheme, kill_shard=1, kill_at_ms=1.5)
        )
        assert report.kills == 1
        assert report.recoveries == 1
        assert report.clean, report.oracle_failures
        assert report.per_shard["1"]["kills"] == 1

    def test_torn_failover_loses_no_acked_write(self):
        report = run_serve(
            tiny_cfg(kill_shard=0, kill_at_ms=1.5, torn_kill=True)
        )
        assert report.kills == 1
        assert report.clean, report.oracle_failures

    def test_failed_batch_is_retried_or_shed_never_acked_twice(self):
        report = run_serve(tiny_cfg(kill_shard=1, kill_at_ms=1.5))
        # The in-flight batch was requeued (or shed if no room), and
        # every admitted request is accounted for exactly once.
        accounted = (
            report.acked_puts + report.acked_gets + report.shed_on_failover
        )
        assert accounted == report.admitted
        assert report.retried >= 0

    def test_overload_triggers_backpressure(self):
        report = run_serve(
            tiny_cfg(
                shards=1, clients=2, rate_per_s=2_000_000.0,
                duration_ms=1.0, queue_depth=4, batch_size=2,
            )
        )
        assert report.rejected.get("queue_full", 0) > 0
        assert report.admitted < report.offered
        assert report.clean  # backpressure never breaks the ack promise

    def test_rejections_during_failover_are_typed(self):
        # A long lease holds the group FAILING_OVER; the tiny queue
        # overflows while the promotion is pending.
        report = run_serve(
            tiny_cfg(
                replicas=1, kill_primary_at_ms=1.0, lease_us=3000.0,
                queue_depth=2, rate_per_s=120_000.0,
            )
        )
        assert report.promotions == 1
        assert report.rejected.get("failing_over", 0) > 0
        assert report.clean

    def test_rejections_during_recovery_are_typed(self):
        report = run_serve(
            tiny_cfg(
                kill_shard=1, kill_at_ms=1.0, queue_depth=2,
                rate_per_s=120_000.0,
            )
        )
        assert report.kills == 1
        # The recovering shard's tiny queue overflows while it is down.
        assert report.rejected.get("shard_recovering", 0) > 0
        assert report.clean

    def test_report_round_trips_to_dict(self):
        report = run_serve(tiny_cfg())
        payload = report.to_dict()
        clone = ServeReport(**payload)
        assert clone.to_dict() == payload


class TestRunBatchSurface:
    def test_run_batch_commits_atomically(self):
        from repro import MemorySystem, SystemConfig

        system = MemorySystem(SystemConfig.small(), scheme="hoop")
        base = system.allocate(64)
        stores = [(base + 8 * i, bytes([i]) * 8) for i in range(4)]
        tx = system.run_batch(stores)
        assert tx.stores == 4
        assert tx.end_ns > tx.begin_ns
        assert system.committed_transactions == 1
        for addr, data in stores:
            assert system.load(addr, 8) == data

    def test_run_batch_annotates_power_loss_with_issued_prefix(self):
        from repro.common.config import FaultConfig, SystemConfig
        from repro.common.errors import PowerLossError
        from repro.txn.system import MemorySystem

        config = SystemConfig.small().replace(
            faults=FaultConfig(enabled=True, seed=3)
        )
        # opt-undo persists a log entry per touched line, so
        # line-apart stores under a small write budget die mid-batch
        # (hoop would buffer until tx_end and the prefix would
        # legitimately be the whole batch).
        system = MemorySystem(config, scheme="opt-undo")
        base = system.allocate(64 * 32)
        stores = [(base + 64 * i, bytes([i + 1]) * 8) for i in range(32)]
        system.device.injector.arm_power_loss(after_writes=4)
        with pytest.raises(PowerLossError) as info:
            system.run_batch(stores)
        issued = info.value.issued_stores
        assert 0 < len(issued) < len(stores)
        assert issued == stores[: len(issued)]

    def test_run_batch_exports_its_write_set_and_redo_words(self):
        from repro import MemorySystem, SystemConfig

        system = MemorySystem(SystemConfig.small(), scheme="hoop")
        base = system.allocate(64)
        stores = [(base, b"\xab" * 16), (base + 16, b"\xcd" * 8)]
        tx = system.run_batch(stores)
        assert tx.write_set == stores
        words = MemorySystem.redo_words(tx.write_set)
        assert words == [
            (base, b"\xab" * 8),
            (base + 8, b"\xab" * 8),
            (base + 16, b"\xcd" * 8),
        ]
        with pytest.raises(ValueError):
            MemorySystem.redo_words([(base + 1, b"x" * 8)])


class TestSeedDiscipline:
    def test_shard_fault_seeds_are_derived_not_shared(self):
        seeds = {
            rng_util.derive(7, "shard", shard, "faults")
            for shard in range(8)
        }
        assert len(seeds) == 8
