"""The introspection toolkit."""

import random

import pytest

from repro import MemorySystem, SystemConfig
from repro.tools import (
    describe_system,
    dump_commit_log,
    dump_mapping_table,
    dump_region,
)


@pytest.fixture
def busy_system():
    rng = random.Random(21)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    addrs = [system.allocate(64) for _ in range(8)]
    for _ in range(40):
        with system.transaction(rng.randrange(4)) as tx:
            for _ in range(rng.randint(1, 4)):
                tx.store_u64(
                    rng.choice(addrs) + 8 * rng.randrange(8),
                    rng.getrandbits(63),
                )
    return system


def test_describe_system(busy_system):
    text = describe_system(busy_system)
    assert "scheme: hoop" in text
    assert "committed transactions: 40" in text
    assert "controller 0" in text


def test_dump_region_lists_busy_blocks(busy_system):
    text = dump_region(busy_system.scheme.controller)
    assert "INUSE" in text or "FULL" in text
    assert "data" in text


def test_dump_region_detects_torn_slice(busy_system):
    controller = busy_system.scheme.controller
    region = controller.region
    active = region.active_block("data")
    victim = region.slice_index(active, 0)
    addr = region.slice_addr(victim)
    raw = bytearray(busy_system.device.peek(addr, 128))
    raw[50] ^= 0xFF
    busy_system.device.poke(addr, bytes(raw))
    text = dump_region(controller)
    torn_column = [
        line.split()[-1] for line in text.splitlines()[2:] if line.strip()
    ]
    assert any(t not in ("0", "") for t in torn_column)


def test_dump_commit_log_chains(busy_system):
    text = dump_commit_log(busy_system.scheme.controller)
    lines = text.splitlines()
    assert lines[0].split()[:2] == ["tx", "segments"]
    assert len(lines) > 2  # live transactions listed


def test_dump_mapping_table(busy_system):
    text = dump_mapping_table(busy_system.scheme.controller)
    assert "0x" in text


def test_describe_multi_controller():
    system = MemorySystem(SystemConfig.small(), scheme="hoop-mc")
    base = system.allocate(128)
    with system.transaction() as tx:
        tx.store_u64(base, 1)
        tx.store_u64(base + 64, 2)
    text = describe_system(system)
    assert "controller 0" in text
    assert "controller 1" in text


def test_describe_non_hoop_scheme():
    system = MemorySystem(SystemConfig.small(), scheme="native")
    with system.transaction() as tx:
        tx.store_u64(system.allocate(8), 1)
    text = describe_system(system)
    assert "scheme: native" in text
    assert "controller" not in text
