"""The crash-point sweep harness and its repro artifacts.

Exercises the machinery behind ``python -m repro.crashtest``: boundary
selection, case determinism, artifact round-trips and replay, the
atomic-durability verifier, and — the §III-F property the harness
exists to check — that parallel recovery is byte-identical to
single-threaded recovery under the same fault plan, including plans
that tear the commit-log tail.
"""

import pytest

from repro import FaultConfig, crashtest
from repro.faults.plan import (
    CrashArtifact,
    load_artifact,
    plan_from_dict,
    plan_to_dict,
    save_artifact,
)


def _plan(boundary, *, seed=7, torn=False):
    return FaultConfig(
        enabled=True,
        seed=seed ^ (boundary << 8),
        power_loss_after_write=boundary,
        torn=torn,
    )


class TestBoundaries:
    def test_exhaustive_when_sample_zero(self):
        assert crashtest.choose_boundaries(10, 0, seed=7) == list(
            range(1, 11)
        )

    def test_sample_is_deterministic_and_anchored(self):
        a = crashtest.choose_boundaries(500, 20, seed=7)
        b = crashtest.choose_boundaries(500, 20, seed=7)
        assert a == b
        assert 1 in a and 500 in a
        assert len(a) <= 22

    def test_probe_counts_are_stable(self):
        w1 = crashtest.count_write_boundaries(
            "hoop", seed=7, transactions=20, addresses=8
        )
        w2 = crashtest.count_write_boundaries(
            "hoop", seed=7, transactions=20, addresses=8
        )
        assert w1 == w2 > 0


class TestCaseDeterminism:
    def test_same_plan_same_fingerprint(self):
        kwargs = dict(seed=7, transactions=30, addresses=8)
        a = crashtest.run_case("hoop", _plan(20, torn=True), **kwargs)
        b = crashtest.run_case("hoop", _plan(20, torn=True), **kwargs)
        assert a.failure == b.failure
        assert a.fingerprint == b.fingerprint

    def test_different_boundary_different_outcome_stream(self):
        kwargs = dict(seed=7, transactions=30, addresses=8)
        a = crashtest.run_case("hoop", _plan(5), **kwargs)
        b = crashtest.run_case("hoop", _plan(25), **kwargs)
        # Different crash points commit different prefixes.
        assert (a.committed, a.fingerprint) != (b.committed, b.fingerprint)


class TestVerifier:
    def test_detects_lost_committed_word(self):
        kwargs = dict(seed=7, transactions=30, addresses=8)
        faults = _plan(20)
        system = crashtest._build_system("hoop", faults)
        outcome = crashtest.run_workload(system, **kwargs)
        system.crash()
        system.recover(threads=2)
        assert (
            crashtest.verify_atomic_durability(
                system, outcome.oracle, outcome.staged
            )
            is None
        )
        # Corrupt one committed word behind recovery's back: the
        # verifier must notice.
        victim = next(iter(outcome.oracle))
        system.device.poke(victim, b"\xff" * 8)
        failure = crashtest.verify_atomic_durability(
            system, outcome.oracle, outcome.staged
        )
        assert failure and "committed words lost" in failure


class TestParallelRecovery:
    @pytest.mark.parametrize("torn", [False, True])
    def test_threaded_recovery_matches_single_threaded(self, torn):
        """recover(threads=N) must be byte-identical to threads=1 for
        the same fault plan — including plans whose power cut tears the
        commit-log tail mid-flush (torn=True sweeps every boundary, so
        commit-log writes are among the fatal ones)."""
        kwargs = dict(seed=7, transactions=30, addresses=8)
        total = crashtest.count_write_boundaries("hoop", **kwargs)
        boundaries = crashtest.choose_boundaries(total, 12, seed=3)
        for boundary in boundaries:
            plan = _plan(boundary, torn=torn)
            single = crashtest.run_case(
                "hoop", plan, recovery_threads=1, **kwargs
            )
            threaded = crashtest.run_case(
                "hoop", plan, recovery_threads=4, **kwargs
            )
            assert single.failure is None
            assert threaded.failure is None
            assert threaded.fingerprint == single.fingerprint, (
                f"threads=4 diverged from threads=1 at boundary "
                f"{boundary} (torn={torn})"
            )


class TestArtifacts:
    def test_plan_round_trip(self):
        plan = FaultConfig(
            enabled=True, seed=9, power_loss_after_write=42, torn=True,
            stuck_blocks=(1, 3),
        )
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_plan_rejects_unknown_fields(self):
        payload = plan_to_dict(FaultConfig(enabled=True))
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            plan_from_dict(payload)

    def test_artifact_round_trip_and_replay(self, tmp_path):
        kwargs = dict(seed=7, transactions=30, addresses=8)
        plan = _plan(18, torn=True)
        case = crashtest.run_case("hoop", plan, **kwargs)
        artifact = CrashArtifact(
            scheme="hoop",
            faults=plan,
            workload_seed=7,
            transactions=30,
            addresses=8,
            recovery_threads=2,
            failure=case.failure,
            fingerprint=case.fingerprint,
        )
        path = save_artifact(artifact, tmp_path / "case.json")
        loaded = load_artifact(path)
        assert loaded.faults == plan
        replayed = crashtest.replay_artifact(loaded)
        assert replayed.failure == case.failure
        assert replayed.fingerprint == case.fingerprint

    def test_newer_artifact_version_is_refused(self):
        payload = CrashArtifact(
            scheme="hoop", faults=FaultConfig(enabled=True)
        ).to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            CrashArtifact.from_dict(payload)


class TestSweep:
    def test_resolve_schemes(self):
        assert crashtest.resolve_schemes("hoop,undo") == [
            "hoop", "opt-undo",
        ]
        assert len(crashtest.resolve_schemes("all")) == 7
        with pytest.raises(ValueError):
            crashtest.resolve_schemes(",")

    @pytest.mark.parametrize("scheme", ["hoop", "logregion"])
    def test_sampled_sweep_passes(self, scheme, tmp_path):
        result = crashtest.sweep_scheme(
            scheme,
            seed=7,
            transactions=20,
            addresses=8,
            sample=10,
            artifact_dir=str(tmp_path),
        )
        assert result.total_writes > 0
        assert result.cases
        assert not result.failures
        assert not list(tmp_path.iterdir())  # no artifacts on success
