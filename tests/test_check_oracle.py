"""Differential oracle + fuzzer: convergence, crash sweep, mutant hunt."""

import pytest

from repro.check.fuzz import ddmin, fuzz_scheme, trace_violations
from repro.check.mutant import MUTANT_SCHEME
from repro.check.oracle import (
    ORACLE_SCHEMES,
    build_system,
    run_check_matrix,
    run_trace,
)
from repro.check.trace import expected_state, generate_trace


# Three seeded workloads, per the acceptance criteria: all schemes must
# converge on each.
CONVERGENCE_SEEDS = (1, 2, 3)


@pytest.mark.parametrize("seed", CONVERGENCE_SEEDS)
def test_all_schemes_converge(seed):
    """Same trace, every scheme, identical final logical state."""
    trace = generate_trace(seed, transactions=15, slots=5, cores=4)
    readbacks = {}
    for scheme in ORACLE_SCHEMES:
        system = build_system(scheme)
        outcome = run_trace(system, trace)
        assert not outcome.power_lost
        expected = expected_state(trace, outcome.slot_addrs)
        readbacks[scheme] = {
            addr: system.load(addr, 8) for addr in expected
        }
        assert readbacks[scheme] == expected, scheme
    baseline = readbacks["native"]
    for scheme, readback in readbacks.items():
        assert readback == baseline, scheme


def test_matrix_clean_on_smoke_sample():
    result = run_check_matrix(
        ["native", "hoop", "hoop-mc", "opt-redo"],
        seed=9,
        transactions=15,
        slots=5,
        crash_sample=3,
    )
    assert result.ok, result.render()
    assert not result.divergences
    # Crash-recovery convergence ran for the real schemes only.
    by_name = {r.scheme: r for r in result.reports}
    assert by_name["native"].crash_cases == 0
    assert by_name["hoop"].crash_cases > 0
    assert by_name["hoop-mc"].crash_cases > 0


def test_matrix_flags_the_mutant():
    result = run_check_matrix(
        ["opt-redo", MUTANT_SCHEME],
        seed=9,
        transactions=15,
        slots=5,
        crash_sample=0,
    )
    assert not result.ok
    by_name = {r.scheme: r for r in result.reports}
    assert by_name["opt-redo"].ok
    assert by_name[MUTANT_SCHEME].violations
    # The mutant's bug is ordering-only: its *functional* state still
    # converges, so the logical comparison alone would miss it.
    assert not by_name[MUTANT_SCHEME].logical_mismatches


def test_mutant_caught_and_shrunk_quickly():
    """Acceptance: caught within 8 iterations, reproducer <= 20 events."""
    result = fuzz_scheme(MUTANT_SCHEME, seed=7, iterations=8)
    assert result.found
    assert result.iterations <= 8
    assert result.shrunk_events <= 20
    # The shrunk trace still reproduces deterministically.
    assert trace_violations(MUTANT_SCHEME, result.trace)
    # And is 1-minimal at txn granularity for this bug class: one txn.
    assert len(result.trace.txns) == 1


def test_fuzz_clean_scheme_stays_clean():
    result = fuzz_scheme("opt-redo", seed=7, iterations=4)
    assert not result.found
    assert result.iterations == 4


def test_ddmin_minimizes_known_predicate():
    # Failing iff the sublist contains both 3 and 7.
    failing = lambda items: 3 in items and 7 in items  # noqa: E731
    out = ddmin(list(range(10)), failing)
    assert sorted(out) == [3, 7]


def test_ddmin_single_element_predicate():
    failing = lambda items: 5 in items  # noqa: E731
    assert ddmin(list(range(40)), failing) == [5]


def test_cli_clean_run(capsys):
    from repro.check.__main__ import main

    code = main(
        [
            "--schemes",
            "native,opt-redo",
            "--transactions",
            "10",
            "--slots",
            "4",
            "--crash-sample",
            "2",
            "-q",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "RESULT: clean" in out


def test_cli_mutant_selftest(capsys, tmp_path):
    from repro.check.__main__ import main

    report = tmp_path / "mutant.txt"
    code = main(["--mutant", "-q", "--out", str(report)])
    out = capsys.readouterr().out
    assert code == 0
    assert "SELF-TEST: passed" in out
    assert "unfenced-write" in report.read_text()


def test_cli_rejects_unknown_scheme():
    from repro.check.__main__ import main

    with pytest.raises(SystemExit):
        main(["--schemes", "definitely-not-a-scheme", "-q"])
