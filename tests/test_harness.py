"""The experiment harness: scales, cells, tables, reports."""

import pytest

from repro.harness import SCALES, run_cell, run_table1
from repro.harness.experiments import get_scale
from repro.stats.report import FigureData, format_table


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "default", "paper"}

    def test_paper_scale_matches_evaluation_setup(self):
        paper = SCALES["paper"]
        assert paper.threads == 8  # §IV-A: eight threads per workload
        config = paper.system_config()
        assert config.num_cores == 16

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_workload_kwargs(self):
        smoke = SCALES["smoke"]
        assert smoke.kwargs_for("hashmap")["keyspace"] == 2048
        assert smoke.kwargs_for("queue") == {}


class TestRunCell:
    def test_cell_runs_and_caches(self):
        first = run_cell("native", "queue", "smoke", seed=3)
        second = run_cell("native", "queue", "smoke", seed=3)
        assert first is second  # memoized
        assert first.transactions > 0

    def test_hoop_cell_carries_extras(self):
        result = run_cell("hoop", "queue", "smoke", seed=3)
        assert "gc_passes" in result.extras
        assert "parallel_reads" in result.extras


class TestTable1:
    def test_rows_cover_all_schemes(self):
        figure = run_table1()
        schemes = figure.column("Scheme")
        assert set(schemes) == {
            "hoop",
            "hoop-mc",
            "native",
            "opt-redo",
            "opt-undo",
            "osp",
            "lsm",
            "lad",
            "logregion",
        }

    def test_hoop_row_matches_paper(self):
        figure = run_table1()
        hoop = figure.by_key("Scheme")["hoop"]
        assert hoop[2:] == ["Low", "No", "No", "Low"]


class TestReportRendering:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 1000.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_figure_render_includes_notes(self):
        fig = FigureData("Fig X", "demo", ["k", "v"])
        fig.add_row("a", 1.0)
        fig.add_note("hello")
        text = fig.render()
        assert "Fig X" in text
        assert "note: hello" in text

    def test_column_and_by_key(self):
        fig = FigureData("F", "t", ["k", "v"])
        fig.add_row("a", 1)
        fig.add_row("b", 2)
        assert fig.column("v") == [1, 2]
        assert fig.by_key("k")["b"] == ["b", 2]

    def test_empty_table_renders(self):
        fig = FigureData("F", "t", ["k", "v"])
        assert "F" in fig.render()
