"""The parallel execution engine: bit-identity, recovery, the driver.

The engine's whole contract is one sentence — ``--workers W`` produces
the same report, byte for byte, as ``--workers 0`` — so these tests
compare full ``ServeReport.to_dict()`` payloads (acks, oracle verdicts,
latency histograms, per-shard fingerprint-bearing failover state)
across worker counts, epoch quanta, and a mid-run worker death that
forces the checkpoint+journal replay path.
"""

import pytest

from repro.common.errors import ConfigError
from repro.serve import EngineConfig, ServeConfig, run_serve
from repro.serve.engine import EngineError


def tiny_cfg(**overrides):
    base = dict(
        shards=4,
        clients=3,
        rate_per_s=30_000.0,
        duration_ms=4.0,
        keyspace=512,
        seed=13,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EngineConfig(workers=-1)
        with pytest.raises(ConfigError):
            EngineConfig(epoch_us=0)
        with pytest.raises(ConfigError):
            EngineConfig(checkpoint_every=0)
        with pytest.raises(ConfigError):
            EngineConfig(retries=-1)

    def test_default_is_in_process(self):
        assert EngineConfig().workers == 0


class TestBitIdentity:
    def test_parallel_clean_run_matches_sequential(self):
        cfg = tiny_cfg()
        seq = run_serve(cfg).to_dict()
        par = run_serve(cfg, engine=EngineConfig(workers=2)).to_dict()
        assert par == seq

    def test_parallel_failover_matches_sequential(self):
        cfg = tiny_cfg(kill_shard=1, torn_kill=True, duration_ms=6.0)
        seq = run_serve(cfg).to_dict()
        par = run_serve(cfg, engine=EngineConfig(workers=2)).to_dict()
        assert par == seq

    def test_parallel_replicated_failover_matches_sequential(self):
        cfg = tiny_cfg(replicas=1, kill_primary_at_ms=2.0, duration_ms=6.0)
        seq = run_serve(cfg).to_dict()
        par = run_serve(cfg, engine=EngineConfig(workers=3)).to_dict()
        assert par == seq

    def test_epoch_quantum_does_not_change_the_result(self):
        # Epoch boundaries partition each shard's event order without
        # reordering it — any quantum must yield the same bytes.
        cfg = tiny_cfg()
        base = run_serve(cfg).to_dict()
        for epoch_us in (100.0, 5000.0):
            assert (
                run_serve(
                    cfg, engine=EngineConfig(epoch_us=epoch_us)
                ).to_dict()
                == base
            )

    def test_more_workers_than_shards_clamps(self):
        cfg = tiny_cfg(shards=2)
        seq = run_serve(cfg).to_dict()
        par = run_serve(cfg, engine=EngineConfig(workers=8)).to_dict()
        assert par == seq


class TestWorkerDeathRecovery:
    def test_worker_death_mid_run_recovers_bit_identical(self):
        cfg = tiny_cfg(replicas=1, kill_primary_at_ms=2.0, duration_ms=6.0)
        seq = run_serve(cfg).to_dict()
        par = run_serve(
            cfg,
            engine=EngineConfig(
                workers=2,
                checkpoint_every=3,
                kill_worker_at=(1, 5),
                backoff_base_s=0.01,
            ),
        ).to_dict()
        assert par == seq

    def test_death_before_first_checkpoint_replays_from_placement(self):
        cfg = tiny_cfg()
        seq = run_serve(cfg).to_dict()
        par = run_serve(
            cfg,
            engine=EngineConfig(
                workers=2,
                checkpoint_every=1000,  # never checkpoints mid-run
                kill_worker_at=(0, 2),
                backoff_base_s=0.01,
            ),
        ).to_dict()
        assert par == seq

    def test_retry_budget_exhaustion_fails_loudly(self):
        # retries=0: the first death already exceeds the budget — the
        # run must raise, never silently drop the worker's shards.
        cfg = tiny_cfg()
        with pytest.raises(EngineError):
            run_serve(
                cfg,
                engine=EngineConfig(
                    workers=2,
                    kill_worker_at=(0, 2),
                    retries=0,
                    backoff_base_s=0.01,
                ),
            )
