"""Nested faults: crash-during-recovery, GC cuts, recovery idempotence.

Three contracts of :mod:`repro.crashtest.nested`:

* **Idempotence** — for every registered persistence scheme, once
  recovery has converged, re-running crash+recover any number of times
  leaves the durable NVM image bit-identical (checked at k=2 and k=5).
* **Nested survival** — a power cut *during* recovery, at any mutation
  boundary, leaves a state from which the next recovery converges to an
  atomically-durable image; same for cuts inside the GC pass.
* **Resumability** — a sweep interrupted after N verdicts and resumed
  produces exactly the verdicts of an uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.common.config import FaultConfig
from repro.common.errors import PowerLossError
from repro.crashtest import build_crashed_cold, verify_atomic_durability
from repro.crashtest.nested import (
    NESTED_SCHEMES,
    SweepState,
    check_idempotence,
    converge_recovery,
    nested_sweep_scheme,
    probe_recovery_ops,
    run_nested_recovery_case,
    sweep_params,
)

ALL_SCHEMES = sorted(NESTED_SCHEMES.values())

# Small but non-trivial workloads: enough transactions that every
# scheme's log/region structures are exercised, small enough to keep the
# whole module fast.
_TXNS = 20
_ADDRS = 8


def _crashed(scheme: str, boundary: int = 15, *, torn: bool = True):
    faults = FaultConfig(
        enabled=True, seed=11, power_loss_after_write=boundary, torn=torn
    )
    system, outcome = build_crashed_cold(
        scheme, faults, seed=7, transactions=_TXNS, addresses=_ADDRS
    )
    system.crash()
    return system, outcome


class TestRecoveryIdempotence:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_twice_is_bit_identical(self, scheme):
        system, outcome = _crashed(scheme)
        system.recover(threads=2)
        assert verify_atomic_durability(
            system, outcome.oracle, outcome.staged
        ) is None
        fingerprint = system.device.content_fingerprint()
        assert check_idempotence(system, fingerprint, k=2) is None

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_k5_is_bit_identical(self, scheme):
        system, _ = _crashed(scheme, boundary=30, torn=False)
        system.recover(threads=2)
        fingerprint = system.device.content_fingerprint()
        assert check_idempotence(system, fingerprint, k=5) is None

    def test_attempt_counters_surface_on_the_system(self):
        system, _ = _crashed("hoop")
        assert system.recovery_attempts == 0
        system.recover(threads=2)
        system.crash()
        system.recover(threads=2)
        assert system.recovery_attempts == 2
        assert system.recovery_interruptions == 0


class TestNestedCut:
    def test_armed_recovery_fault_fires_during_recovery(self):
        system, _ = _crashed("hoop")
        system.device.injector.arm_recovery_fault(after_ops=2)
        with pytest.raises(PowerLossError):
            system.recover(threads=2)
        assert system.recovery_interruptions == 1
        assert system.device.fault_stats.recovery_ops == 2

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_every_nested_boundary_converges(self, scheme):
        """Exhaustive over recovery ops at one forward boundary."""
        probe, _ = _crashed(scheme)
        ops = probe_recovery_ops(probe, threads=2)
        for after_ops in range(ops):
            system, outcome = _crashed(scheme)
            case = run_nested_recovery_case(
                system,
                outcome,
                phase="recovery",
                forward_boundary=15,
                nested_boundary=after_ops,
                torn=True,
                nested_torn=bool(after_ops % 2),
                threads=2,
                idempotence_k=1,
            )
            assert case.failure is None, (
                f"{scheme} nested at op {after_ops}: {case.failure}"
            )

    def test_nth_fault_rearms_after_each_firing(self):
        """A third (and fourth) cut: converge_recovery keeps retrying."""
        system, outcome = _crashed("hoop")
        system.device.injector.arm_recovery_fault(after_ops=3)
        attempts = 0
        for _ in range(3):  # fault #2, #3, #4
            attempts += 1
            with pytest.raises(PowerLossError):
                system.recover(threads=2)
            system.crash()
            system.device.injector.arm_recovery_fault(after_ops=3)
        system.device.injector.restore_power()
        final_attempts, failure = converge_recovery(system, threads=2)
        assert failure is None
        assert verify_atomic_durability(
            system, outcome.oracle, outcome.staged
        ) is None
        assert system.recovery_attempts == attempts + final_attempts
        assert system.recovery_interruptions == attempts


class TestNestedSweep:
    def test_smoke_sweep_passes(self):
        result = nested_sweep_scheme(
            "hoop",
            seed=7,
            transactions=_TXNS,
            addresses=_ADDRS,
            forward_sample=2,
            nested_sample=2,
            gc_sample=2,
            idempotence_k=1,
        )
        assert result.cases
        assert not result.failures
        phases = {c.phase for c in result.cases}
        assert phases == {"recovery", "gc", "gc-media"}

    def test_resume_reproduces_cold_verdicts(self, tmp_path):
        kwargs = dict(
            seed=7,
            transactions=_TXNS,
            addresses=_ADDRS,
            forward_sample=2,
            nested_sample=2,
            gc_sample=2,
            idempotence_k=1,
        )
        params = sweep_params(
            torn_mode="alternate", recovery_threads=2, **kwargs
        )
        cold = nested_sweep_scheme("osp", **kwargs)

        # Interrupted sweep: stop after 3 fresh verdicts...
        state_path = tmp_path / "state.json"
        state = SweepState.open(state_path, params, resume=False)
        partial = nested_sweep_scheme(
            "osp", state=state, max_new_cases=3, **kwargs
        )
        assert len(partial.cases) == 3
        # ...then resume from the journal on disk.
        state = SweepState.open(state_path, params, resume=True)
        resumed = nested_sweep_scheme("osp", state=state, **kwargs)
        assert resumed.skipped == 3
        assert [c.to_dict() for c in resumed.cases] == [
            c.to_dict() for c in cold.cases
        ]

    def test_resume_rejects_mismatched_params(self, tmp_path):
        params = sweep_params(
            seed=7, transactions=10, addresses=4, forward_sample=1,
            nested_sample=1, gc_sample=1, torn_mode="never",
            recovery_threads=2, idempotence_k=1,
        )
        state = SweepState.open(tmp_path / "s.json", params, resume=False)
        state.save()
        other = dict(params, seed=8)
        with pytest.raises(ValueError):
            SweepState.open(tmp_path / "s.json", other, resume=True)
