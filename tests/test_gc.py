"""Garbage collection: coalescing, commit-order prefix, reclamation."""

import pytest

from repro.common.config import SystemConfig
from repro.common.units import MB
from repro.core.controller import HoopController
from repro.core.oop_region import BlockState
from repro.nvm.device import NVMDevice


@pytest.fixture
def ctrl():
    config = SystemConfig.small(nvm_capacity=16 * MB)
    device = NVMDevice(config.nvm)
    return HoopController(config, device), config


def commit_tx(ctrl, tx_id, writes, core=0):
    ctrl.tx_begin(core, tx_id, 0.0)
    for addr, value in writes:
        line_addr = addr & ~63
        line = bytearray(ctrl.port.device.peek(line_addr, 64))
        line[addr - line_addr : addr - line_addr + 8] = value
        ctrl.tx_store(core, tx_id, addr, 8, line_addr, bytes(line), 0.0)
    return ctrl.tx_end(core, tx_id, 0.0)


def word(i):
    return i.to_bytes(8, "little")


class TestCoalescing:
    def test_single_tx_migrates_home(self, ctrl):
        controller, _ = ctrl
        commit_tx(controller, 1, [(0x1000, word(1)), (0x1008, word(2))])
        report = controller.gc.run(0.0, on_demand=True)
        assert report.transactions_migrated == 1
        assert report.words_migrated == 2
        assert controller.port.device.peek(0x1000, 8) == word(1)

    def test_overwrites_coalesce(self, ctrl):
        controller, _ = ctrl
        for tx_id in range(1, 11):
            commit_tx(controller, tx_id, [(0x1000, word(tx_id))])
        report = controller.gc.run(0.0, on_demand=True)
        assert report.words_scanned == 10
        assert report.words_migrated == 1
        assert report.data_reduction_ratio == pytest.approx(0.9)
        assert controller.port.device.peek(0x1000, 8) == word(10)

    def test_latest_version_wins(self, ctrl):
        controller, _ = ctrl
        commit_tx(controller, 1, [(0x2000, word(111))])
        commit_tx(controller, 2, [(0x2000, word(222))])
        controller.gc.run(0.0, on_demand=True)
        assert controller.port.device.peek(0x2000, 8) == word(222)

    def test_within_tx_latest_wins(self, ctrl):
        controller, _ = ctrl
        commit_tx(
            controller, 1, [(0x3000, word(1)), (0x3000, word(2))]
        )
        controller.gc.run(0.0, on_demand=True)
        assert controller.port.device.peek(0x3000, 8) == word(2)

    def test_mapping_entries_pruned(self, ctrl):
        controller, _ = ctrl
        commit_tx(controller, 1, [(0x1000, word(5))])
        assert controller.mapping.entries > 0
        controller.gc.run(0.0, on_demand=True)
        assert controller.mapping.entries == 0

    def test_eviction_buffer_receives_lines(self, ctrl):
        controller, _ = ctrl
        commit_tx(controller, 1, [(0x1000, word(5))])
        controller.gc.run(0.0, on_demand=True)
        staged = controller.eviction_buffer.lookup(0x1000)
        assert staged is not None
        assert staged[:8] == word(5)


class TestLifecycle:
    def test_retired_txs_not_collected_twice(self, ctrl):
        controller, _ = ctrl
        commit_tx(controller, 1, [(0x1000, word(1))])
        first = controller.gc.run(0.0, on_demand=True)
        second = controller.gc.run(0.0, on_demand=True)
        assert first.transactions_migrated == 1
        assert second.transactions_migrated == 0

    def test_blocks_reclaimed_and_reused(self, ctrl):
        controller, config = ctrl
        region = controller.region
        # Fill more than one block with committed transactions.
        per_slice_txs = region.slots_per_block + 5
        for tx_id in range(1, per_slice_txs + 1):
            commit_tx(controller, tx_id, [(0x1000 + 8 * tx_id, word(tx_id))])
        report = controller.gc.run(0.0, on_demand=True)
        assert report.blocks_collected >= 1
        assert controller.region.stats.blocks_reclaimed >= 1

    def test_open_tx_blocks_not_reclaimed(self, ctrl):
        controller, _ = ctrl
        # An open transaction with flushed slices pins its block.
        controller.tx_begin(0, 99, 0.0)
        for i in range(12):  # forces at least one slice flush
            addr = 0x4000 + i * 8
            line = bytes(64)
            controller.tx_store(0, 99, addr, 8, addr & ~63, line, 0.0)
        commit_tx(controller, 100, [(0x5000, word(1))], core=1)
        controller.gc.run(0.0, on_demand=True)
        open_blocks = controller.refs.blocks_of(99)
        assert open_blocks
        for block in open_blocks:
            assert controller.region.state_of(block) != BlockState.UNUSED

    def test_commit_order_prefix_respected(self, ctrl):
        controller, _ = ctrl
        # tx 1 commits, tx 2 stays open with slices, tx 3 commits. The
        # migration prefix must stop before tx 3 only if tx 2 committed
        # before it... here tx 2 is open, and txs 1,3 are committed; the
        # prefix includes both committed ones because the open tx has no
        # commit entry.
        commit_tx(controller, 1, [(0x1000, word(1))])
        controller.tx_begin(1, 2, 0.0)
        line = bytes(64)
        controller.tx_store(1, 2, 0x2000, 8, 0x2000, line, 0.0)
        commit_tx(controller, 3, [(0x3000, word(3))], core=2)
        report = controller.gc.run(0.0, on_demand=True)
        assert report.transactions_migrated == 2

    def test_watermark_advances(self, ctrl):
        controller, _ = ctrl
        from repro.core.gc import RETIRE_WATERMARK_ADDR

        commit_tx(controller, 1, [(0x1000, word(1))])
        controller.gc.run(0.0, on_demand=True)
        watermark = int.from_bytes(
            controller.port.device.peek(RETIRE_WATERMARK_ADDR, 8), "little"
        )
        assert watermark >= 1

    def test_periodic_trigger(self, ctrl):
        controller, config = ctrl
        period = config.hoop.gc.period_ns
        assert controller.gc.maybe_run(period / 2) is None
        commit_tx(controller, 1, [(0x1000, word(1))])
        report = controller.gc.maybe_run(period * 1.5)
        assert report is not None

    def test_empty_pass_is_cheap(self, ctrl):
        controller, _ = ctrl
        report = controller.gc.run(0.0, on_demand=True)
        assert report.blocks_collected == 0
        assert report.words_migrated == 0
        assert report.data_reduction_ratio == 0.0

    def test_stats_accumulate(self, ctrl):
        controller, _ = ctrl
        commit_tx(controller, 1, [(0x1000, word(1))])
        controller.gc.run(0.0, on_demand=True)
        stats = controller.gc.stats
        assert stats.passes == 1
        assert stats.on_demand_passes == 1
        assert stats.words_migrated == 1
        assert len(stats.reports) == 1
