"""Cache-line and word address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import addr
from repro.common.errors import AddressError

addresses = st.integers(min_value=0, max_value=2**48 - 1)
sizes = st.integers(min_value=1, max_value=4096)


def test_line_base_and_offset():
    assert addr.cache_line_base(0) == 0
    assert addr.cache_line_base(63) == 0
    assert addr.cache_line_base(64) == 64
    assert addr.cache_line_offset(130) == 2


def test_word_helpers():
    assert addr.word_base(15) == 8
    assert addr.word_index(16) == 2
    assert addr.word_offset_in_line(72) == 1
    assert addr.is_word_aligned(24)
    assert not addr.is_word_aligned(25)
    assert addr.is_line_aligned(128)
    assert not addr.is_line_aligned(129)


def test_iter_cache_lines_spans_boundary():
    lines = list(addr.iter_cache_lines(60, 8))
    assert lines == [0, 64]


def test_iter_words_partial():
    words = list(addr.iter_words(6, 4))
    assert words == [0, 8]


def test_split_by_cache_line_covers_exactly():
    pieces = list(addr.split_by_cache_line(100, 100))
    total = sum(size for _, _, size in pieces)
    assert total == 100
    assert pieces[0][1] == 100
    cursor = 100
    for line, piece_addr, piece_size in pieces:
        assert piece_addr == cursor
        assert addr.cache_line_base(piece_addr) == line
        assert piece_addr + piece_size <= line + 64
        cursor += piece_size


def test_counts():
    assert addr.count_cache_lines(0, 64) == 1
    assert addr.count_cache_lines(63, 2) == 2
    assert addr.count_words(0, 8) == 1
    assert addr.count_words(7, 2) == 2


def test_invalid_ranges_rejected():
    with pytest.raises(AddressError):
        list(addr.iter_cache_lines(-1, 4))
    with pytest.raises(AddressError):
        list(addr.iter_words(0, 0))
    with pytest.raises(AddressError):
        addr.count_cache_lines(10, -5)


@given(addresses, sizes)
def test_split_pieces_never_cross_lines(start, size):
    pieces = list(addr.split_by_cache_line(start, size))
    assert sum(s for _, _, s in pieces) == size
    for line, piece_addr, piece_size in pieces:
        assert line <= piece_addr
        assert piece_addr + piece_size <= line + addr.CACHE_LINE_BYTES


@given(addresses, sizes)
def test_count_matches_iteration(start, size):
    assert addr.count_cache_lines(start, size) == len(
        list(addr.iter_cache_lines(start, size))
    )
    assert addr.count_words(start, size) == len(
        list(addr.iter_words(start, size))
    )


@given(addresses)
def test_base_is_idempotent(a):
    assert addr.cache_line_base(addr.cache_line_base(a)) == (
        addr.cache_line_base(a)
    )
    assert addr.word_base(addr.word_base(a)) == addr.word_base(a)
