"""Determinism and caching contracts of the parallel harness.

The whole Layer-2 design rests on two properties:

* a cell's :class:`RunResult` is a pure function of its cache key, so a
  worker process computes field-for-field the same result the parent
  would have; and
* the on-disk cache round-trips results exactly (JSON float round-trip
  is lossless via ``repr``-shortest encoding).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.config import SystemConfig
from repro.harness import diskcache, experiments, parallel

_SPECS = [
    parallel.CellSpec("native", "vector", "smoke"),
    parallel.CellSpec("hoop", "vector", "smoke"),
]


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a temp dir and start from a cold memo."""
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    experiments.clear_cache()
    diskcache.stats.reset()
    yield
    experiments.clear_cache()


def test_parallel_results_identical_to_sequential():
    sequential = {}
    for spec in _SPECS:
        result = experiments.run_cell(
            spec.scheme, spec.workload, spec.scale, use_cache=False
        )
        sequential[spec.name] = dataclasses.asdict(result)
    experiments.clear_cache()

    report = parallel.run_matrix(_SPECS, jobs=2, use_cache=False)
    assert report.computed == len(_SPECS)
    for spec in _SPECS:
        parallel_result = dataclasses.asdict(report.results[spec.name])
        assert parallel_result == sequential[spec.name]


def test_parallel_prewarm_seeds_the_memo():
    report = parallel.run_matrix(_SPECS, jobs=2)
    # A figure runner asking for the same cell afterwards must hit the
    # memo and return the pre-warmed object itself.
    again = experiments.run_cell("hoop", "vector", "smoke")
    assert again is report.results["hoop/vector"]


def test_disk_cache_round_trip_is_exact():
    first = experiments.run_cell("native", "vector", "smoke")
    assert diskcache.stats.stores == 1
    experiments.clear_cache()
    second = experiments.run_cell("native", "vector", "smoke")
    assert diskcache.stats.hits == 1
    assert second is not first
    assert dataclasses.asdict(second) == dataclasses.asdict(first)


def test_config_cells_cache_by_field_values():
    """Satellite: an explicit config= keys the cache by value, not identity."""
    cfg_a = SystemConfig.small()
    cfg_b = SystemConfig.small()
    key_a = experiments.cell_key("hoop", "vector", "smoke", 7, 64, cfg_a, None)
    key_b = experiments.cell_key("hoop", "vector", "smoke", 7, 64, cfg_b, None)
    assert cfg_a is not cfg_b
    assert key_a == key_b

    nvm = dataclasses.replace(cfg_b.nvm, read_latency_ns=999.0)
    cfg_c = cfg_b.replace(nvm=nvm)
    key_c = experiments.cell_key("hoop", "vector", "smoke", 7, 64, cfg_c, None)
    assert key_c != key_a


def test_key_digest_is_stable_and_discriminating():
    key_1 = experiments.cell_key("hoop", "vector", "smoke", 7, 64, None, None)
    key_2 = experiments.cell_key("hoop", "vector", "smoke", 7, 64, None, {})
    key_3 = experiments.cell_key("hoop", "vector", "smoke", 8, 64, None, None)
    assert diskcache.key_digest(key_1) == diskcache.key_digest(key_2)
    assert diskcache.key_digest(key_1) != diskcache.key_digest(key_3)
    assert diskcache.code_fingerprint() == diskcache.code_fingerprint()


def _flaky_worker(spec):
    """Fails each cell's first attempt, then computes it for real."""
    import os
    import pathlib

    marker = pathlib.Path(os.environ["REPRO_TEST_FLAKY_DIR"]) / spec.scheme
    if not marker.exists():
        marker.write_text("tried")
        raise RuntimeError("transient worker failure")
    return parallel._run_spec(spec)


def _poison_worker(spec):
    """One scheme never succeeds; the rest compute normally."""
    if spec.scheme == "hoop":
        raise RuntimeError("poisoned cell")
    return parallel._run_spec(spec)


def _hang_worker(spec):
    """One scheme hangs far past any test timeout."""
    import time as _time

    if spec.scheme == "hoop":
        _time.sleep(600)
    return parallel._run_spec(spec)


class TestFaultTolerance:
    def test_transient_worker_failure_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path / "flaky"))
        (tmp_path / "flaky").mkdir()
        report = parallel.run_matrix(
            _SPECS, jobs=2, use_cache=False,
            retries=2, backoff_base_s=0.01, worker=_flaky_worker,
        )
        assert report.retries_total == len(_SPECS)  # one retry each
        assert not report.quarantined
        assert set(report.results) == {s.name for s in _SPECS}

    def test_poisoned_cell_quarantined_without_failing_matrix(self):
        report = parallel.run_matrix(
            _SPECS, jobs=2, use_cache=False,
            retries=1, backoff_base_s=0.01, worker=_poison_worker,
        )
        assert len(report.quarantined) == 1
        bad = report.quarantined[0]
        assert bad.name == "hoop/vector"
        assert bad.attempts == 2  # initial + 1 retry
        assert "poisoned" in bad.reason
        # The healthy cell still completed.
        assert "native/vector" in report.results
        assert "hoop/vector" not in report.results

    def test_hung_worker_is_killed_and_quarantined(self):
        report = parallel.run_matrix(
            _SPECS, jobs=2, use_cache=False,
            timeout_s=1.0, retries=0, backoff_base_s=0.01,
            worker=_hang_worker,
        )
        assert len(report.quarantined) == 1
        assert report.quarantined[0].name == "hoop/vector"
        assert "timed out" in report.quarantined[0].reason
        assert "native/vector" in report.results

    def test_sequential_path_retries_and_quarantines(self, monkeypatch):
        calls = {"n": 0}

        def _always_raise(*args, **kwargs):
            calls["n"] += 1
            raise RuntimeError("boom")

        monkeypatch.setattr(experiments, "run_cell", _always_raise)
        report = parallel.run_matrix(
            _SPECS[:1], jobs=1, use_cache=False,
            retries=2, backoff_base_s=0.01,
        )
        assert calls["n"] == 3  # initial + 2 retries
        assert len(report.quarantined) == 1
        assert report.quarantined[0].attempts == 3
        assert not report.results


def test_memo_is_lru_bounded():
    limit = experiments._CELL_CACHE_MAX
    for i in range(limit + 16):
        experiments.seed_cache(("synthetic", i), object())
    assert len(experiments._CELL_CACHE) == limit
    # Oldest synthetic keys fell out, newest survived.
    assert ("synthetic", limit + 15) in experiments._CELL_CACHE
    assert ("synthetic", 0) not in experiments._CELL_CACHE
