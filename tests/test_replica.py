"""Replication groups: redo shipping, promotion, rejoin, divergence."""

import pytest

from repro.common.errors import ConfigError
from repro.serve import ServeConfig, run_serve
from repro.serve.replica import (
    BACKUP,
    LEASED,
    ReplicationGroup,
    StaleEpochError,
    decode_entries,
    encode_entry,
    keyspace_fingerprint,
)
from repro.telemetry.hub import Telemetry


def tiny_cfg(**overrides):
    base = dict(
        shards=2,
        clients=3,
        rate_per_s=30_000.0,
        duration_ms=4.0,
        keyspace=512,
        seed=13,
    )
    base.update(overrides)
    return ServeConfig(**base)


def make_group(replicas=1, **overrides):
    kwargs = dict(
        scheme="hoop",
        keys=list(range(16)),
        value_bytes=64,
        seed=21,
        telemetry=Telemetry(),
        replicas=replicas,
    )
    kwargs.update(overrides)
    return ReplicationGroup(0, **kwargs)


class TestLogCodec:
    def test_entry_round_trips(self):
        stores = [(4096, b"\x11" * 64), (8192, b"\x22" * 8)]
        buf = encode_entry(7, 3, stores)
        assert len(buf) % 8 == 0
        decoded = decode_entries(buf)
        assert decoded == [(7, 3, stores)]

    def test_consecutive_entries_decode_in_order(self):
        a = encode_entry(1, 1, [(4096, b"a" * 8)])
        b = encode_entry(2, 1, [(4160, b"b" * 16)])
        decoded = decode_entries(a + b)
        assert [seq for seq, _, _ in decoded] == [1, 2]

    def test_rejects_unaligned_records(self):
        with pytest.raises(ValueError):
            encode_entry(1, 1, [(4097, b"x" * 8)])
        with pytest.raises(ValueError):
            encode_entry(1, 1, [(4096, b"x" * 7)])


class TestReplicationGroup:
    def test_synchronous_ship_reaches_every_backup(self):
        group = make_group(replicas=2)
        addr = group.primary.addr_of(3)
        outcome = group.commit_and_ship([(addr, b"\x5a" * 64)])
        assert outcome.tx is not None
        assert not outcome.dead_backups
        # The ack waited for every backup's durable log append.
        assert outcome.ack_ns >= outcome.tx.end_ns
        for backup in group.backups():
            assert backup.shipped_seq == 1
            assert backup.tail  # shipped but not yet applied

    def test_ack_is_max_of_primary_and_ship_commits(self):
        group = make_group(replicas=1)
        addr = group.primary.addr_of(0)
        outcome = group.commit_and_ship([(addr, b"\x01" * 64)])
        backup = group.backups()[0]
        assert outcome.ack_ns == max(outcome.tx.end_ns, backup.clock_ns)
        # Synchronous replication: the primary stalls to the ack.
        assert group.primary.clock_ns == outcome.ack_ns

    def test_stale_epoch_ship_is_fenced(self):
        group = make_group(replicas=1)
        backup = group.backups()[0]
        addr = group.primary.addr_of(0)
        group.commit_and_ship([(addr, b"\x01" * 64)])
        backup.epoch = 5
        with pytest.raises(StaleEpochError):
            backup.receive_ship(9, 4, [(addr, b"\x02" * 64)], 0.0)

    def test_projection_fingerprints_match_across_replicas(self):
        group = make_group(replicas=2)
        for key in range(8):
            addr = group.primary.addr_of(key)
            group.commit_and_ship([(addr, bytes([key + 1]) * 64)])
        prints = group.live_fingerprints()
        assert len(set(prints.values())) == 1
        assert group.divergence() is None

    def test_divergence_detects_a_rogue_record(self):
        group = make_group(replicas=1)
        addr = group.primary.addr_of(0)
        group.commit_and_ship([(addr, b"\x07" * 64)])
        backup = group.backups()[0]
        # Durably append a record the primary never shipped: the
        # backup's projected keyspace now disagrees with the primary's.
        backup.receive_ship(
            2, group.epoch, [(addr, b"\xff" * 64)], backup.clock_ns
        )
        failure = group.divergence()
        assert failure is not None and "diverged" in failure

    def test_log_compaction_keeps_shipping(self):
        # A log big enough for the header plus only a few entries
        # forces apply+reset wraps mid-stream; shipping must survive
        # and replicas must stay bit-identical.
        group = make_group(replicas=1, log_bytes=4096)
        for i in range(24):
            addr = group.primary.addr_of(i % 16)
            outcome = group.commit_and_ship([(addr, bytes([i + 1]) * 64)])
            assert not outcome.dead_backups
        assert group.divergence() is None

    def test_promotion_replays_unapplied_tail(self):
        # apply_every huge: the backup never applies on its own, so the
        # promotion path must replay the whole shipped tail.
        group = make_group(replicas=1, apply_every=10_000)
        values = {}
        for key in range(8):
            addr = group.primary.addr_of(key)
            value = bytes([0x40 + key]) * 64
            values[addr] = value
            group.commit_and_ship([(addr, value)])
        backup = group.backups()[0]
        assert len(backup.tail) == 8
        old_epoch = group.epoch
        promoted = group.promote(group.primary.clock_ns)
        assert promoted is backup
        assert promoted.state == LEASED
        assert group.epoch == old_epoch + 1
        assert not promoted.tail
        # Every acked value is durable on the new primary (hoop keeps
        # commits out-of-place, so judge via the crash+recover
        # projection, not a raw home-region peek).
        projection = promoted.durable_projection()
        for addr, value in values.items():
            assert projection.device.peek(addr, 64) == value

    def test_freshest_backup_wins_ties_to_lowest_index(self):
        group = make_group(replicas=2)
        addr = group.primary.addr_of(0)
        group.commit_and_ship([(addr, b"\x01" * 64)])
        a, b = group.backups()
        assert group.choose_successor() is a  # tie -> lowest index
        b.shipped_seq += 1  # b is fresher now
        assert group.choose_successor() is b

    def test_rejoin_catch_up_is_bit_identical(self):
        group = make_group(replicas=2)
        for key in range(12):
            addr = group.primary.addr_of(key)
            group.commit_and_ship([(addr, bytes([key + 1]) * 64)])
        victim = group.replicas[1]
        never_crashed = group.replicas[2]
        group.begin_replica_recovery(
            victim, group.primary.clock_ns, floor_ns=0.0
        )
        # More traffic lands while the victim is dead.
        for key in range(12, 16):
            addr = group.primary.addr_of(key)
            group.commit_and_ship([(addr, bytes([key + 1]) * 64)])
        group.catch_up(victim, victim.recover_at_ns)
        retry = group.try_go_live(victim, max(victim.clock_ns, 1e12))
        assert retry is None
        assert victim.state == BACKUP
        assert victim.fingerprint() == never_crashed.fingerprint()
        assert group.divergence() is None


class TestReplicatedServeConfig:
    def test_backup_kill_requires_replicas(self):
        with pytest.raises(ConfigError):
            tiny_cfg(kill_backup_at_ms=1.0)

    def test_double_kill_requires_first_kill(self):
        with pytest.raises(ConfigError):
            tiny_cfg(replicas=1, double_kill_at_ms=2.0)

    def test_replica_count_is_bounded(self):
        with pytest.raises(ConfigError):
            tiny_cfg(replicas=5)
        with pytest.raises(ConfigError):
            tiny_cfg(replicas=-1)

    def test_apply_every_must_be_positive(self):
        with pytest.raises(ConfigError):
            tiny_cfg(replicas=1, apply_every=0)


class TestReplicatedEndToEnd:
    def test_replicated_run_is_deterministic(self):
        cfg = tiny_cfg(replicas=1, kill_primary_at_ms=1.5)
        assert run_serve(cfg).to_dict() == run_serve(cfg).to_dict()

    def test_clean_replicated_run_ships_everything(self):
        report = run_serve(tiny_cfg(replicas=1))
        assert report.clean
        assert report.replicas == 1
        assert report.replication["records_shipped"] > 0
        assert report.promotions == 0
        # Final sweep: one divergence check per shard, plus every
        # replica's projection verified against the full ack history.
        assert report.divergence_checks == 2
        assert report.oracle_verifications == 4

    @pytest.mark.parametrize("scheme", ["hoop", "logregion"])
    @pytest.mark.parametrize("torn", [False, True])
    def test_kill_primary_promotes_and_loses_nothing(self, scheme, torn):
        report = run_serve(
            tiny_cfg(
                scheme=scheme,
                replicas=1,
                kill_primary_at_ms=1.5,
                torn_kill=torn,
            )
        )
        assert report.clean, report.oracle_failures
        assert report.kills == 1
        assert report.promotions == 1
        assert report.rejoins == 1
        assert report.per_shard["0"]["epoch"] == 2
        assert report.per_shard["0"]["primary"] == 1

    def test_kill_backup_never_stalls_serving(self):
        report = run_serve(
            tiny_cfg(replicas=1, kill_backup_at_ms=1.5, torn_kill=True)
        )
        assert report.clean, report.oracle_failures
        assert report.backup_kills == 1
        assert report.promotions == 0  # the primary never lost its lease
        assert report.rejoins == 1
        assert report.acked_puts + report.acked_gets == report.admitted

    def test_double_kill_promotes_twice(self):
        report = run_serve(
            tiny_cfg(
                replicas=2,
                kill_primary_at_ms=1.0,
                double_kill_at_ms=2.0,
            )
        )
        assert report.clean, report.oracle_failures
        assert report.kills == 2
        assert report.promotions == 2
        assert report.rejoins == 2

    def test_promotion_with_unapplied_tail_end_to_end(self):
        # apply_every huge: the backup promotes with its entire shipped
        # history unapplied and must replay it before serving.
        report = run_serve(
            tiny_cfg(
                replicas=1,
                apply_every=10_000,
                kill_primary_at_ms=1.5,
                torn_kill=True,
            )
        )
        assert report.clean, report.oracle_failures
        assert report.promotions == 1

    def test_replication_cost_is_visible(self):
        base = run_serve(tiny_cfg(read_fraction=0.0))
        replicated = run_serve(tiny_cfg(read_fraction=0.0, replicas=2))
        # Synchronous shipping can only slow acks down, never speed
        # them up: same acked work over a longer (or equal) makespan.
        acked = base.acked_puts + base.acked_gets
        assert replicated.acked_puts + replicated.acked_gets == acked
        assert replicated.makespan_ns >= base.makespan_ns
        assert replicated.latency["max"] >= base.latency["max"]


class TestKeyspaceFingerprint:
    def test_fingerprint_covers_only_the_slots(self):
        group = make_group(replicas=0)
        primary = group.primary
        addr = primary.addr_of(5)
        group.commit_and_ship([(addr, b"\x33" * 64)])
        before = keyspace_fingerprint(
            primary.durable_projection(), primary.slot_addrs, 64
        )
        # Scribbling outside the keyspace must not change it.
        scratch = primary.system.allocate(64)
        primary.system.device.poke(scratch, b"\x99" * 64)
        after = keyspace_fingerprint(
            primary.durable_projection(), primary.slot_addrs, 64
        )
        assert before == after
