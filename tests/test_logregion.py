"""Circular append log: appends, truncation, wrap, crash scanning."""

import pytest

from repro.common.config import NVMConfig
from repro.common.errors import CapacityError
from repro.common.units import KB, MB
from repro.memctrl.port import MemoryPort
from repro.nvm.device import NVMDevice
from repro.schemes.logregion import (
    KIND_COMMIT,
    KIND_DATA,
    AppendLog,
)


def make_log(capacity=8 * KB, base=0):
    device = NVMDevice(NVMConfig(capacity=16 * MB))
    port = MemoryPort(device)
    return AppendLog(port, base, capacity)


def test_append_and_scan_round_trip():
    log = make_log()
    log.append(KIND_DATA, 1, 0x100, b"payload1", 0.0, sync=False)
    log.append(KIND_COMMIT, 1, 0, b"", 0.0, sync=True)
    entries = list(log.rebuild_and_scan())
    assert [(e.kind, e.tx_id, e.addr, e.payload) for e in entries] == [
        (KIND_DATA, 1, 0x100, b"payload1"),
        (KIND_COMMIT, 1, 0, b""),
    ]


def test_offsets_monotonic():
    log = make_log()
    first, _ = log.append(KIND_DATA, 1, 0, b"a" * 10, 0.0, sync=False)
    second, _ = log.append(KIND_DATA, 1, 0, b"b" * 10, 0.0, sync=False)
    assert second > first


def test_min_entry_padding_counts_on_nvm():
    log = make_log()
    before = log.port.device.stats.bytes_written
    log.append(KIND_DATA, 1, 0, b"x" * 8, 0.0, sync=False,
               min_entry_bytes=128)
    assert log.port.device.stats.bytes_written - before == 128


def test_truncation_frees_space():
    log = make_log(capacity=2 * KB)
    for i in range(10):
        log.append(KIND_DATA, i, 0, b"z" * 64, 0.0, sync=False)
    live = log.live_bytes
    log.truncate(0.0)
    assert log.live_bytes == 0
    assert live > 0


def test_partial_truncation():
    log = make_log()
    log.append(KIND_DATA, 1, 0, b"old", 0.0, sync=False)
    keep, _ = log.append(KIND_DATA, 2, 0, b"new", 0.0, sync=False)
    log.truncate(0.0, upto=keep)
    entries = list(log.rebuild_and_scan())
    assert [e.tx_id for e in entries] == [2]


def test_truncate_outside_live_range_rejected():
    log = make_log()
    offset, _ = log.append(KIND_DATA, 1, 0, b"a", 0.0, sync=False)
    log.truncate(0.0)
    with pytest.raises(CapacityError):
        log.truncate(0.0, upto=offset)


def test_capacity_error_when_full_of_live_entries():
    log = make_log(capacity=1 * KB)
    with pytest.raises(CapacityError):
        for i in range(100):
            log.append(KIND_DATA, i, 0, b"q" * 64, 0.0, sync=False)


def test_circular_reuse_after_truncation():
    log = make_log(capacity=1 * KB)
    # Fill, truncate, fill again, repeatedly: must never raise.
    for round_no in range(10):
        for i in range(5):
            log.append(KIND_DATA, i, 0, b"r" * 64, 0.0, sync=False)
        log.truncate(0.0)
    assert log.appends == 50


def test_wrap_preserves_scannable_entries():
    log = make_log(capacity=1 * KB)
    for i in range(5):
        log.append(KIND_DATA, i, 0, b"s" * 64, 0.0, sync=False)
    log.truncate(0.0)
    # These appends wrap around the physical end.
    kept = []
    for i in range(5, 10):
        offset, _ = log.append(KIND_DATA, i, 0, b"t" * 64, 0.0, sync=False)
        kept.append(i)
    entries = list(log.rebuild_and_scan())
    assert [e.tx_id for e in entries] == kept


def test_scan_does_not_resurrect_stale_laps():
    log = make_log(capacity=1 * KB)
    for i in range(6):
        log.append(KIND_DATA, i, 0, b"u" * 64, 0.0, sync=False)
    log.truncate(0.0)
    # One fresh entry after wrap; the scan must yield only it, not the
    # valid-looking bytes of the previous lap beyond it.
    log.append(KIND_DATA, 99, 0, b"fresh", 0.0, sync=False)
    entries = list(log.rebuild_and_scan())
    assert [e.tx_id for e in entries] == [99]


def test_torn_tail_detected():
    log = make_log()
    log.append(KIND_DATA, 1, 0, b"good", 0.0, sync=False)
    offset, _ = log.append(KIND_DATA, 2, 0, b"torn", 0.0, sync=False)
    # Corrupt the second entry's payload on the device.
    physical = log._physical(offset)
    log.port.device.poke(physical + 24, b"XXXX")
    entries = list(log.rebuild_and_scan())
    assert [e.tx_id for e in entries] == [1]


def test_empty_log_scans_empty():
    log = make_log()
    assert list(log.rebuild_and_scan()) == []


def test_reset_starts_fresh_lap():
    log = make_log(capacity=1 * KB)
    log.append(KIND_DATA, 1, 0, b"v" * 64, 0.0, sync=False)
    log.reset()
    assert list(log.rebuild_and_scan()) == []
    offset, _ = log.append(KIND_DATA, 2, 0, b"w", 0.0, sync=False)
    assert [e.tx_id for e in log.rebuild_and_scan()] == [2]


def test_fill_fraction():
    log = make_log(capacity=2 * KB)
    assert log.fill_fraction == 0.0
    log.append(KIND_DATA, 1, 0, b"x" * 100, 0.0, sync=False)
    assert 0 < log.fill_fraction < 1
