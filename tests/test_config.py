"""Configuration defaults (Table II / §III-H) and validation."""

import pytest

from repro.common.config import (
    CacheConfig,
    EnergyConfig,
    GCConfig,
    HoopConfig,
    NVMConfig,
    SystemConfig,
)
from repro.common.errors import ConfigError
from repro.common.units import GB, KB, MB, MS


class TestTableIIDefaults:
    def test_processor(self):
        cfg = SystemConfig.paper_default()
        assert cfg.num_cores == 16
        assert cfg.core_freq_hz == pytest.approx(2.5e9)

    def test_cache_hierarchy(self):
        cfg = SystemConfig.paper_default()
        assert (cfg.l1.size, cfg.l1.ways) == (32 * KB, 4)
        assert (cfg.l2.size, cfg.l2.ways) == (256 * KB, 8)
        assert (cfg.llc.size, cfg.llc.ways) == (2 * MB, 16)

    def test_nvm_parameters(self):
        nvm = SystemConfig.paper_default().nvm
        assert nvm.capacity == 512 * GB
        assert nvm.read_latency_ns == 50.0
        assert nvm.write_latency_ns == 150.0
        assert nvm.energy.row_buffer_read_pj_per_bit == 0.93
        assert nvm.energy.array_write_pj_per_bit == 16.82

    def test_hoop_hardware_budget(self):
        hoop = SystemConfig.paper_default().hoop
        assert hoop.mapping_table_bytes == 2 * MB
        assert hoop.oop_buffer_bytes_per_core == 1 * KB
        assert hoop.eviction_buffer_bytes == 128 * KB
        assert hoop.oop_block_bytes == 2 * MB
        assert hoop.slice_bytes == 128
        assert hoop.gc.period_ns == 10 * MS

    def test_oop_region_is_ten_percent(self):
        cfg = SystemConfig.paper_default()
        assert cfg.oop_region_bytes == pytest.approx(
            0.10 * cfg.nvm.capacity, rel=0.01
        )
        assert cfg.oop_region_base + cfg.oop_region_bytes == (
            cfg.nvm.capacity
        )


class TestDerivedValues:
    def test_cache_geometry(self):
        cache = CacheConfig("L1", 32 * KB, 4)
        assert cache.num_lines == 512
        assert cache.num_sets == 128

    def test_mapping_table_entries(self):
        hoop = HoopConfig()
        assert hoop.mapping_table_entries == (2 * MB) // 16

    def test_slices_per_block(self):
        assert HoopConfig().slices_per_block == (2 * MB) // 128

    def test_eviction_buffer_lines(self):
        assert HoopConfig().eviction_buffer_lines == (128 * KB) // 72

    def test_replace_returns_modified_copy(self):
        cfg = SystemConfig.small()
        other = cfg.replace(num_cores=2)
        assert other.num_cores == 2
        assert cfg.num_cores == 4


class TestValidation:
    def test_cache_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1024, 3)  # 16 lines not divisible by 3

    def test_cache_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 0, 4)

    def test_nvm_rejects_bad_latency(self):
        with pytest.raises(ConfigError):
            NVMConfig(read_latency_ns=0)
        with pytest.raises(ConfigError):
            NVMConfig(write_latency_ns=-1)

    def test_nvm_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            NVMConfig(bandwidth_gb_per_s=0)

    def test_energy_rejects_negative(self):
        with pytest.raises(ConfigError):
            EnergyConfig(array_write_pj_per_bit=-0.1)

    def test_gc_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            GCConfig(period_ns=0)
        with pytest.raises(ConfigError):
            GCConfig(on_demand_mapping_fill=0.0)

    def test_hoop_rejects_bad_region_fraction(self):
        with pytest.raises(ConfigError):
            HoopConfig(oop_region_fraction=1.5)

    def test_hoop_rejects_misaligned_block(self):
        with pytest.raises(ConfigError):
            HoopConfig(oop_block_bytes=1000)

    def test_system_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=0)

    def test_system_rejects_mixed_line_sizes(self):
        with pytest.raises(ConfigError):
            SystemConfig(l1=CacheConfig("L1", 4 * KB, 4, line_size=32))


def test_small_config_is_consistent():
    cfg = SystemConfig.small()
    assert cfg.oop_region_bytes % cfg.hoop.oop_block_bytes == 0
    assert cfg.home_region_bytes > 0
    assert cfg.cycle_ns == pytest.approx(0.4)
