"""Doc tooling: docstring ratchet and markdown link checker."""

import json

from repro.tools.doccheck import (
    BASELINE_PATH,
    ModuleReport,
    check_against_baseline,
    scan_tree,
)
from repro.tools.linkcheck import anchors_of, check_file, doc_files, github_slug


def test_ratchet_holds_against_committed_baseline():
    reports = scan_tree()
    baseline = json.loads(BASELINE_PATH.read_text())
    problems = check_against_baseline(reports, baseline)
    assert not problems, "\n".join(problems)


def test_checker_modules_fully_documented():
    """The new subsystem enters the ratchet at a high floor."""
    reports = scan_tree()
    for module in ("repro.check", "repro.check.sanitizer", "repro.check.trace"):
        assert reports[module].coverage == 1.0, reports[module].missing


def test_ratchet_flags_regression():
    reports = {"m": ModuleReport(module="m", documented=1, total=2)}
    problems = check_against_baseline(reports, {"m": 1.0})
    assert problems and "fell below" in problems[0]


def test_ratchet_requires_new_modules_at_full_coverage():
    report = ModuleReport(module="new", documented=1, total=2)
    report.missing.append("thing")
    problems = check_against_baseline({"new": report}, {})
    assert problems and "new module" in problems[0]


def test_github_slug_rules():
    assert github_slug("Life of a store") == "life-of-a-store"
    assert github_slug("`python -m repro.check`") == "python--m-reprocheck"
    assert github_slug("A, B & C!") == "a-b--c"


def test_anchors_of_headings():
    text = "# Top\n\n## Sub Section\n\ncode\n\n### `cli` usage\n"
    assert anchors_of(text) == {"top", "sub-section", "cli-usage"}


def test_repo_docs_have_no_broken_links():
    problems = []
    for path in doc_files():
        problems.extend(check_file(path))
    assert not problems, "\n".join(problems)


def test_linkcheck_detects_broken_path(tmp_path, monkeypatch):
    import repro.tools.linkcheck as lc

    doc = tmp_path / "x.md"
    doc.write_text("# T\n\n[gone](missing.md) [ok](#t) [bad](#nope)\n")
    monkeypatch.setattr(lc, "REPO_ROOT", tmp_path)
    problems = lc.check_file(doc)
    assert any("broken path" in p for p in problems)
    assert any("missing anchor #nope" in p for p in problems)
    assert not any("#t" in p for p in problems)
