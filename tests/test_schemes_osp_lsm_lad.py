"""OSP, LSM, and LAD scheme behaviours."""

import pytest

from repro.common.config import SystemConfig
from repro.common.units import MB
from repro.nvm.device import NVMDevice
from repro.schemes.lad import LADScheme
from repro.schemes.lsm import LSMScheme
from repro.schemes.native import NativeScheme
from repro.schemes.osp import OSPScheme


def make(scheme_cls):
    config = SystemConfig.small(nvm_capacity=16 * MB)
    device = NVMDevice(config.nvm)
    return scheme_cls(config, device)


def run_tx(scheme, writes, core=0):
    tx_id, now = scheme.tx_begin(core, 0.0)
    for addr, value in writes:
        line_addr = addr & ~63
        line = bytearray(scheme.device.peek(line_addr, 64))
        line[addr - line_addr : addr - line_addr + 8] = value
        now = scheme.on_store(
            core, tx_id, addr, 8, line_addr, bytes(line), now
        )
    return scheme.tx_end(core, tx_id, now), tx_id


def word(i):
    return i.to_bytes(8, "little")


class TestOSP:
    def test_commit_flips_to_new_data(self):
        scheme = make(OSPScheme)
        run_tx(scheme, [(0x1000, word(1))])
        data, _ = scheme.fill_line(0x1000, 0.0)
        assert data[:8] == word(1)

    def test_old_copy_untouched_in_place(self):
        scheme = make(OSPScheme)
        scheme.device.poke(0x1000, word(7))
        run_tx(scheme, [(0x1000, word(8))])
        # Shadow paging: the home copy still holds the old version until
        # the pair consolidates; reads go through the flip bit.
        assert scheme.device.peek(0x1000, 8) == word(7)
        data, _ = scheme.fill_line(0x1000, 0.0)
        assert data[:8] == word(8)

    def test_tlb_shootdown_charged(self):
        scheme = make(OSPScheme)
        done, _ = run_tx(scheme, [(0x1000, word(1))])
        assert done >= 250.0
        assert scheme.tlb_shootdowns == 1

    def test_recovery_honours_flips(self):
        scheme = make(OSPScheme)
        scheme.device.poke(0x1000, word(1))
        run_tx(scheme, [(0x1000, word(2))])
        scheme.crash()
        scheme.recover()
        assert scheme.device.peek(0x1000, 8) == word(2)

    def test_uncommitted_writes_invisible_after_crash(self):
        scheme = make(OSPScheme)
        scheme.device.poke(0x1000, word(1))
        run_tx(scheme, [(0x1000, word(2))])
        tx_id, now = scheme.tx_begin(0, 0.0)
        line = bytearray(scheme.device.peek(0x1000, 64))
        line[:8] = word(99)
        scheme.on_store(0, tx_id, 0x1000, 8, 0x1000, bytes(line), now)
        scheme.crash()  # before tx_end
        scheme.recover()
        assert scheme.device.peek(0x1000, 8) == word(2)

    def test_consolidation_happens_under_repeated_flips(self):
        scheme = make(OSPScheme)
        for i in range(20):
            run_tx(scheme, [(0x1000, word(i))])
        assert scheme.consolidations > 0

    def test_read_only_commit_free(self):
        scheme = make(OSPScheme)
        tx_id, now = scheme.tx_begin(0, 0.0)
        done = scheme.tx_end(0, tx_id, now)
        assert done == now


class TestLSM:
    def test_committed_data_via_index(self):
        scheme = make(LSMScheme)
        run_tx(scheme, [(0x1000, word(1))])
        data, extra = scheme.fill_line(0x1000, 0.0)
        assert data[:8] == word(1)
        assert extra > 0  # the index walk costs hops

    def test_home_stale_until_gc(self):
        scheme = make(LSMScheme)
        run_tx(scheme, [(0x1000, word(2))])
        assert scheme.device.peek(0x1000, 8) == bytes(8)
        scheme.quiesce(0.0)
        assert scheme.device.peek(0x1000, 8) == word(2)

    def test_gc_coalesces(self):
        scheme = make(LSMScheme)
        for i in range(10):
            run_tx(scheme, [(0x1000, word(i))])
        scheme.quiesce(0.0)
        assert scheme.words_scanned == 10
        assert scheme.words_migrated == 1
        assert scheme.device.peek(0x1000, 8) == word(9)

    def test_recovery_replays_committed_extents(self):
        scheme = make(LSMScheme)
        run_tx(
            scheme,
            [(0x1000, word(1)), (0x1008, word(2)), (0x3000, word(3))],
        )
        scheme.crash()
        outcome = scheme.recover()
        assert outcome.committed_transactions == 1
        assert scheme.device.peek(0x1000, 8) == word(1)
        assert scheme.device.peek(0x1008, 8) == word(2)
        assert scheme.device.peek(0x3000, 8) == word(3)

    def test_uncommitted_lost_on_crash(self):
        scheme = make(LSMScheme)
        tx_id, now = scheme.tx_begin(0, 0.0)
        line = bytearray(64)
        line[:8] = word(5)
        scheme.on_store(0, tx_id, 0x1000, 8, 0x1000, bytes(line), now)
        scheme.crash()
        scheme.recover()
        assert scheme.device.peek(0x1000, 8) == bytes(8)

    def test_index_dies_with_crash(self):
        scheme = make(LSMScheme)
        run_tx(scheme, [(0x1000, word(1))])
        assert len(scheme.index) == 1
        scheme.crash()
        assert len(scheme.index) == 0

    def test_within_tx_rewrite_latest_wins_after_recovery(self):
        scheme = make(LSMScheme)
        run_tx(scheme, [(0x1000, word(1)), (0x1000, word(2))])
        scheme.crash()
        scheme.recover()
        assert scheme.device.peek(0x1000, 8) == word(2)


class TestLAD:
    def test_commit_is_in_place(self):
        scheme = make(LADScheme)
        run_tx(scheme, [(0x1000, word(1))])
        assert scheme.device.peek(0x1000, 8) == word(1)

    def test_uncommitted_stays_in_queue(self):
        scheme = make(LADScheme)
        tx_id, now = scheme.tx_begin(0, 0.0)
        line = bytearray(64)
        line[:8] = word(9)
        scheme.on_store(0, tx_id, 0x1000, 8, 0x1000, bytes(line), now)
        assert scheme.device.peek(0x1000, 8) == bytes(8)
        data, _ = scheme.fill_line(0x1000, 0.0)
        assert data[:8] == word(9)  # served from the controller queue

    def test_crash_drops_uncommitted(self):
        scheme = make(LADScheme)
        tx_id, now = scheme.tx_begin(0, 0.0)
        line = bytearray(64)
        line[:8] = word(9)
        scheme.on_store(0, tx_id, 0x1000, 8, 0x1000, bytes(line), now)
        scheme.crash()
        assert scheme.recover().scheme == "lad"
        assert scheme.device.peek(0x1000, 8) == bytes(8)

    def test_queue_overflow_forces_early_writes(self):
        scheme = make(LADScheme)
        writes = [(0x1000 + i * 64, word(i)) for i in range(80)]
        run_tx(scheme, writes)
        assert scheme.queue_overflows > 0

    def test_line_granularity_traffic(self):
        scheme = make(LADScheme)
        run_tx(scheme, [(0x1000, word(1)), (0x1008, word(2))])
        # One line + one commit record.
        assert scheme.device.stats.bytes_written == 128


class TestNative:
    def test_no_persistence_work(self):
        scheme = make(NativeScheme)
        done, _ = run_tx(scheme, [(0x1000, word(1))])
        assert done == 0.0
        assert scheme.device.stats.bytes_written == 0

    def test_eviction_writes_home(self):
        scheme = make(NativeScheme)
        scheme.on_evict(0x1000, b"n" * 64, True, False, 0, 0.0)
        assert scheme.device.peek(0x1000, 64) == b"n" * 64

    def test_recover_is_noop(self):
        scheme = make(NativeScheme)
        assert scheme.recover() is None
