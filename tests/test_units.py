"""Unit conversions and formatting."""

import pytest

from repro.common import units


def test_size_constants_scale():
    assert units.MB == 1024 * units.KB
    assert units.GB == 1024 * units.MB
    assert units.TB == 1024 * units.GB
    assert units.PB == 1024 * units.TB


def test_time_constants_scale():
    assert units.US == 1000 * units.NS
    assert units.MS == 1000 * units.US
    assert units.SEC == 1000 * units.MS


def test_cycles_to_ns_round_trip():
    freq = 2.5 * units.GHZ
    assert units.cycles_to_ns(2.5e9, freq) == pytest.approx(1e9)
    assert units.ns_to_cycles(units.cycles_to_ns(1234, freq), freq) == (
        pytest.approx(1234)
    )


def test_cycles_to_ns_rejects_bad_frequency():
    with pytest.raises(ValueError):
        units.cycles_to_ns(10, 0)
    with pytest.raises(ValueError):
        units.ns_to_cycles(10, -1)


def test_bandwidth_conversion():
    one = units.bytes_per_ns_from_gbps(1.0)
    assert one == pytest.approx(1.073741824)
    with pytest.raises(ValueError):
        units.bytes_per_ns_from_gbps(0)


def test_format_bytes():
    assert units.format_bytes(512) == "512 B"
    assert units.format_bytes(2048) == "2.0 KB"
    assert units.format_bytes(3 * units.MB) == "3.0 MB"
    assert units.format_bytes(5 * units.TB) == "5.0 TB"


def test_format_time():
    assert units.format_time_ns(12.0) == "12.0 ns"
    assert units.format_time_ns(1500.0) == "1.5 us"
    assert units.format_time_ns(47 * units.MS) == "47.0 ms"
    assert units.format_time_ns(2 * units.SEC) == "2.00 s"
